use std::error::Error;
use std::fmt;

use crate::{Lv, Pattern};

/// Errors produced when building or evaluating [`TruthTable`]s and parsing
/// [`Pattern`](crate::Pattern)s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TruthTableError {
    /// A pattern string contained a character other than `0`, `1`, `U`/`X`.
    BadPatternChar(char),
    /// The number of supplied entries does not equal `2^inputs`.
    WrongEntryCount {
        /// Number of inputs of the table.
        inputs: usize,
        /// Number of entries supplied.
        got: usize,
    },
    /// The table was evaluated with the wrong number of input values.
    WrongArity {
        /// Number of inputs the table expects.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// More inputs than the supported maximum (20).
    TooManyInputs(usize),
    /// Two tables (or patterns) of different arities were combined.
    ArityMismatch {
        /// Arity of the left-hand operand.
        left: usize,
        /// Arity of the right-hand operand.
        right: usize,
    },
    /// A position index was outside a pattern's width.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The pattern's width.
        len: usize,
    },
}

impl fmt::Display for TruthTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TruthTableError::BadPatternChar(c) => {
                write!(f, "invalid pattern character {c:?}")
            }
            // Checked shift: the variant is constructible with arbitrary
            // `inputs`, so the message must not overflow for >= 64.
            TruthTableError::WrongEntryCount { inputs, got } => {
                match 1usize.checked_shl(*inputs as u32) {
                    Some(needed) => write!(
                        f,
                        "a {inputs}-input table needs {needed} entries, got {got}"
                    ),
                    None => write!(
                        f,
                        "a {inputs}-input table needs 2^{inputs} entries, got {got}"
                    ),
                }
            }
            TruthTableError::WrongArity { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            TruthTableError::TooManyInputs(n) => {
                write!(f, "{n} inputs exceed the supported maximum of 20")
            }
            TruthTableError::ArityMismatch { left, right } => {
                write!(f, "arity mismatch: {left} vs {right} inputs")
            }
            TruthTableError::IndexOutOfBounds { index, len } => {
                write!(f, "position {index} is out of bounds for width {len}")
            }
        }
    }
}

impl Error for TruthTableError {}

/// Maximum number of inputs a [`TruthTable`] supports. Standard cells in the
/// paper have at most 5 inputs; 20 leaves generous headroom while keeping
/// the table (2^20 entries) small.
pub const MAX_TRUTH_TABLE_INPUTS: usize = 20;

/// An exhaustive single-output function of `n` binary inputs, with ternary
/// output.
///
/// This is the artifact the paper's defect-characterization step produces
/// ("the truth table is then used as library model, so that the whole faulty
/// circuit is simulated at gate level", §4) and the gate-level simulator
/// consumes. The output may be [`Lv::U`] for input combinations under which
/// a defective cell floats or fights.
///
/// Entry `i` is the output for the input combination whose bit `k` (LSB =
/// input 0) is `(i >> k) & 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    inputs: usize,
    entries: Vec<Lv>,
}

impl TruthTable {
    /// Builds a table from a boolean function of the input bits.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > MAX_TRUTH_TABLE_INPUTS`; use
    /// [`TruthTable::try_from_fn`] when the arity is not statically known.
    pub fn from_fn<F: FnMut(&[bool]) -> bool>(inputs: usize, f: F) -> Self {
        TruthTable::try_from_fn(inputs, f).expect("too many truth table inputs")
    }

    /// Fallible [`TruthTable::from_fn`]: rejects wide arities instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::TooManyInputs`] when `inputs` exceeds
    /// [`MAX_TRUTH_TABLE_INPUTS`].
    pub fn try_from_fn<F: FnMut(&[bool]) -> bool>(
        inputs: usize,
        mut f: F,
    ) -> Result<Self, TruthTableError> {
        if inputs > MAX_TRUTH_TABLE_INPUTS {
            return Err(TruthTableError::TooManyInputs(inputs));
        }
        let mut entries = Vec::with_capacity(1 << inputs);
        let mut bits = vec![false; inputs];
        for i in 0..(1usize << inputs) {
            for (k, b) in bits.iter_mut().enumerate() {
                *b = (i >> k) & 1 == 1;
            }
            entries.push(Lv::from(f(&bits)));
        }
        Ok(TruthTable { inputs, entries })
    }

    /// Builds a table from explicit ternary entries.
    ///
    /// # Errors
    ///
    /// Returns an error when the entry count is not `2^inputs` or `inputs`
    /// exceeds the supported maximum.
    pub fn from_entries(inputs: usize, entries: Vec<Lv>) -> Result<Self, TruthTableError> {
        if inputs > MAX_TRUTH_TABLE_INPUTS {
            return Err(TruthTableError::TooManyInputs(inputs));
        }
        if entries.len() != 1 << inputs {
            return Err(TruthTableError::WrongEntryCount {
                inputs,
                got: entries.len(),
            });
        }
        Ok(TruthTable { inputs, entries })
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// The raw entries (length `2^inputs`).
    pub fn entries(&self) -> &[Lv] {
        &self.entries
    }

    /// Evaluates the table for fully specified boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.inputs()`.
    pub fn eval_bits(&self, bits: &[bool]) -> Lv {
        assert_eq!(bits.len(), self.inputs, "wrong arity");
        let mut index = 0usize;
        for (k, b) in bits.iter().enumerate() {
            if *b {
                index |= 1 << k;
            }
        }
        self.entries[index]
    }

    /// Evaluates the table for ternary inputs.
    ///
    /// Unknown inputs are expanded: the result is the unique output if all
    /// boolean completions agree, `U` otherwise. Expansion is exponential in
    /// the number of `U` inputs but cells are tiny (≤ 5 inputs).
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::WrongArity`] when the value count differs
    /// from the table's input count.
    pub fn eval(&self, values: &[Lv]) -> Result<Lv, TruthTableError> {
        if values.len() != self.inputs {
            return Err(TruthTableError::WrongArity {
                expected: self.inputs,
                got: values.len(),
            });
        }
        let unknown: Vec<usize> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_known())
            .map(|(i, _)| i)
            .collect();
        let mut base = 0usize;
        for (k, v) in values.iter().enumerate() {
            if *v == Lv::One {
                base |= 1 << k;
            }
        }
        let mut result: Option<Lv> = None;
        for combo in 0..(1usize << unknown.len()) {
            let mut index = base;
            for (j, pos) in unknown.iter().enumerate() {
                if (combo >> j) & 1 == 1 {
                    index |= 1 << pos;
                }
            }
            let out = self.entries[index];
            match result {
                None => result = Some(out),
                Some(prev) if prev == out => {}
                Some(_) => return Ok(Lv::U),
            }
        }
        Ok(result.unwrap_or(Lv::U))
    }

    /// Evaluates the table on a [`Pattern`].
    ///
    /// # Errors
    ///
    /// Same as [`TruthTable::eval`].
    pub fn eval_pattern(&self, pattern: &Pattern) -> Result<Lv, TruthTableError> {
        self.eval(pattern.values())
    }

    /// Input combinations (as bit vectors) on which `self` and `other`
    /// produce definitely different outputs.
    ///
    /// This is how the defect-injection campaign decides which cell-level
    /// patterns *activate* a static defect.
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::ArityMismatch`] when the two tables have
    /// different input counts.
    pub fn differing_inputs(&self, other: &TruthTable) -> Result<Vec<Vec<bool>>, TruthTableError> {
        if self.inputs != other.inputs {
            return Err(TruthTableError::ArityMismatch {
                left: self.inputs,
                right: other.inputs,
            });
        }
        let mut out = Vec::new();
        for i in 0..(1usize << self.inputs) {
            if self.entries[i].conflicts_with(other.entries[i]) {
                out.push((0..self.inputs).map(|k| (i >> k) & 1 == 1).collect());
            }
        }
        Ok(out)
    }

    /// Whether the two tables agree on every fully specified input.
    pub fn equivalent(&self, other: &TruthTable) -> bool {
        self.inputs == other.inputs && self.entries == other.entries
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.entries {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and2() -> TruthTable {
        TruthTable::from_fn(2, |b| b[0] & b[1])
    }

    #[test]
    fn from_fn_matches_direct_eval() {
        let t = and2();
        assert_eq!(t.eval_bits(&[false, false]), Lv::Zero);
        assert_eq!(t.eval_bits(&[true, false]), Lv::Zero);
        assert_eq!(t.eval_bits(&[false, true]), Lv::Zero);
        assert_eq!(t.eval_bits(&[true, true]), Lv::One);
    }

    #[test]
    fn ternary_eval_collapses_dont_cares() {
        let t = and2();
        // 0 & U = 0 regardless of the unknown input.
        assert_eq!(t.eval(&[Lv::Zero, Lv::U]).unwrap(), Lv::Zero);
        // 1 & U = U: the completions disagree.
        assert_eq!(t.eval(&[Lv::One, Lv::U]).unwrap(), Lv::U);
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let t = and2();
        assert!(matches!(
            t.eval(&[Lv::One]),
            Err(TruthTableError::WrongArity {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn from_entries_validates_count() {
        assert!(TruthTable::from_entries(2, vec![Lv::Zero; 3]).is_err());
        assert!(TruthTable::from_entries(2, vec![Lv::Zero; 4]).is_ok());
    }

    #[test]
    fn differing_inputs_finds_activations() {
        let good = and2();
        // Faulty AND whose output is stuck at 0: differs only on (1,1).
        let faulty = TruthTable::from_fn(2, |_| false);
        let diff = good.differing_inputs(&faulty).unwrap();
        assert_eq!(diff, vec![vec![true, true]]);
    }

    #[test]
    fn differing_inputs_rejects_arity_mismatch() {
        // Regression: this was an `assert_eq!` panic reachable from the
        // injection campaign; it must be a structured error.
        let good = and2();
        let other = TruthTable::from_fn(3, |b| b[0]);
        assert!(matches!(
            good.differing_inputs(&other),
            Err(TruthTableError::ArityMismatch { left: 2, right: 3 })
        ));
    }

    #[test]
    fn try_from_fn_boundary() {
        assert!(TruthTable::try_from_fn(MAX_TRUTH_TABLE_INPUTS, |_| false).is_ok());
        assert!(matches!(
            TruthTable::try_from_fn(MAX_TRUTH_TABLE_INPUTS + 1, |_| false),
            Err(TruthTableError::TooManyInputs(n)) if n == MAX_TRUTH_TABLE_INPUTS + 1
        ));
    }

    #[test]
    fn wrong_entry_count_display_never_overflows() {
        let small = TruthTableError::WrongEntryCount { inputs: 3, got: 7 };
        assert!(small.to_string().contains("needs 8 entries"));
        // A 64+-input count cannot be shifted; the message falls back to
        // the symbolic form instead of overflowing.
        let wide = TruthTableError::WrongEntryCount {
            inputs: 200,
            got: 1,
        };
        assert!(wide.to_string().contains("2^200"));
    }

    #[test]
    fn u_entries_do_not_count_as_differences() {
        let good = and2();
        let floaty =
            TruthTable::from_entries(2, vec![Lv::Zero, Lv::Zero, Lv::Zero, Lv::U]).unwrap();
        assert!(good.differing_inputs(&floaty).unwrap().is_empty());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(and2().to_string(), "0001");
    }
}
