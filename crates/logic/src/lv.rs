use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// A ternary logic value: `0`, `1` or `U` (unknown).
///
/// `U` is produced by the switch-level simulator for floating or fighting
/// nodes and is the "unknown value" stored in the paper's suspect lists
/// (eq. 1: `LVi = {0, 1, U}`).
///
/// The boolean operators follow standard three-valued (Kleene) logic:
///
/// ```
/// use icd_logic::Lv;
/// assert_eq!(Lv::Zero & Lv::U, Lv::Zero); // 0 dominates AND
/// assert_eq!(Lv::One | Lv::U, Lv::One);   // 1 dominates OR
/// assert_eq!(!Lv::U, Lv::U);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Lv {
    /// Logic zero.
    Zero,
    /// Logic one.
    One,
    /// Unknown / undriven / conflicting value.
    #[default]
    U,
}

impl Lv {
    /// All three values, in a fixed order (useful for exhaustive tests).
    pub const ALL: [Lv; 3] = [Lv::Zero, Lv::One, Lv::U];

    /// Returns `true` when the value is `0` or `1`.
    #[inline]
    pub fn is_known(self) -> bool {
        self != Lv::U
    }

    /// Converts a known value to `bool`; `None` for [`Lv::U`].
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Lv::Zero => Some(false),
            Lv::One => Some(true),
            Lv::U => None,
        }
    }

    /// The complement, with `!U = U`.
    ///
    /// Equivalent to the `Not` operator; provided as a named method for use
    /// in iterator chains.
    #[inline]
    pub fn complement(self) -> Lv {
        match self {
            Lv::Zero => Lv::One,
            Lv::One => Lv::Zero,
            Lv::U => Lv::U,
        }
    }

    /// Whether `self` and `other` are definitely different (one is `0`, the
    /// other `1`). `U` is never *definitely* different from anything.
    #[inline]
    pub fn conflicts_with(self, other: Lv) -> bool {
        matches!((self, other), (Lv::Zero, Lv::One) | (Lv::One, Lv::Zero))
    }

    /// The logic-value intersection of the paper's Fig. 10, used when
    /// intersecting Bridging Suspect List entries (eq. 5).
    ///
    /// * equal known values meet to themselves,
    /// * `0 ∩ 1 = U` — the couple is *kept* with an unknown value, modelling
    ///   the strong dominant bridging fault case the paper calls out,
    /// * `U` is absorbing: `U ∩ x = U` (once a value is unknown it stays
    ///   unknown). This makes the operation an associative, commutative
    ///   meet, so folding a suspect's value across any number of failing
    ///   patterns is order-independent.
    ///
    /// ```
    /// use icd_logic::Lv;
    /// assert_eq!(Lv::Zero.meet(Lv::Zero), Lv::Zero);
    /// assert_eq!(Lv::Zero.meet(Lv::One), Lv::U);
    /// assert_eq!(Lv::U.meet(Lv::One), Lv::U);
    /// ```
    #[inline]
    pub fn meet(self, other: Lv) -> Lv {
        if self == other {
            self
        } else {
            Lv::U
        }
    }
}

impl Not for Lv {
    type Output = Lv;
    #[inline]
    fn not(self) -> Lv {
        self.complement()
    }
}

impl BitAnd for Lv {
    type Output = Lv;
    #[inline]
    fn bitand(self, rhs: Lv) -> Lv {
        match (self, rhs) {
            (Lv::Zero, _) | (_, Lv::Zero) => Lv::Zero,
            (Lv::One, Lv::One) => Lv::One,
            _ => Lv::U,
        }
    }
}

impl BitOr for Lv {
    type Output = Lv;
    #[inline]
    fn bitor(self, rhs: Lv) -> Lv {
        match (self, rhs) {
            (Lv::One, _) | (_, Lv::One) => Lv::One,
            (Lv::Zero, Lv::Zero) => Lv::Zero,
            _ => Lv::U,
        }
    }
}

impl From<bool> for Lv {
    #[inline]
    fn from(b: bool) -> Lv {
        if b {
            Lv::One
        } else {
            Lv::Zero
        }
    }
}

impl fmt::Display for Lv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Lv::Zero => '0',
            Lv::One => '1',
            Lv::U => 'U',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_is_involutive_on_known_values() {
        assert_eq!(!!Lv::Zero, Lv::Zero);
        assert_eq!(!!Lv::One, Lv::One);
        assert_eq!(!Lv::U, Lv::U);
    }

    #[test]
    fn and_truth_table() {
        assert_eq!(Lv::One & Lv::One, Lv::One);
        assert_eq!(Lv::One & Lv::Zero, Lv::Zero);
        assert_eq!(Lv::Zero & Lv::U, Lv::Zero);
        assert_eq!(Lv::One & Lv::U, Lv::U);
        assert_eq!(Lv::U & Lv::U, Lv::U);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Lv::Zero | Lv::Zero, Lv::Zero);
        assert_eq!(Lv::One | Lv::Zero, Lv::One);
        assert_eq!(Lv::One | Lv::U, Lv::One);
        assert_eq!(Lv::Zero | Lv::U, Lv::U);
    }

    #[test]
    fn fig10_meet_table() {
        // The full Fig. 10 table as implemented.
        assert_eq!(Lv::Zero.meet(Lv::Zero), Lv::Zero);
        assert_eq!(Lv::One.meet(Lv::One), Lv::One);
        assert_eq!(Lv::Zero.meet(Lv::One), Lv::U);
        assert_eq!(Lv::One.meet(Lv::Zero), Lv::U);
        assert_eq!(Lv::U.meet(Lv::Zero), Lv::U);
        assert_eq!(Lv::U.meet(Lv::One), Lv::U);
        assert_eq!(Lv::Zero.meet(Lv::U), Lv::U);
        assert_eq!(Lv::One.meet(Lv::U), Lv::U);
        assert_eq!(Lv::U.meet(Lv::U), Lv::U);
    }

    #[test]
    fn meet_is_commutative_and_idempotent() {
        for a in Lv::ALL {
            assert_eq!(a.meet(a), a);
            for b in Lv::ALL {
                assert_eq!(a.meet(b), b.meet(a));
            }
        }
    }

    #[test]
    fn conflicts_only_between_opposite_known_values() {
        assert!(Lv::Zero.conflicts_with(Lv::One));
        assert!(Lv::One.conflicts_with(Lv::Zero));
        assert!(!Lv::U.conflicts_with(Lv::One));
        assert!(!Lv::Zero.conflicts_with(Lv::Zero));
        assert!(!Lv::U.conflicts_with(Lv::U));
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Lv::Zero.to_string(), "0");
        assert_eq!(Lv::One.to_string(), "1");
        assert_eq!(Lv::U.to_string(), "U");
    }

    #[test]
    fn kleene_de_morgan() {
        for a in Lv::ALL {
            for b in Lv::ALL {
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }
}
