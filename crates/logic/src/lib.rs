//! Ternary logic foundation for the `icdiag` workspace.
//!
//! This crate provides the small, dependency-free vocabulary shared by every
//! other crate in the workspace:
//!
//! * [`Lv`] — the ternary logic value `{0, 1, U}` used by the switch-level
//!   simulator and by the diagnosis suspect lists, together with the
//!   intersection lattice of the paper's Fig. 10 ([`Lv::meet`]).
//! * [`Pattern`] — an input vector applied to a circuit or to a single cell.
//! * [`PatternPair`] — a two-pattern (launch/capture) test used for delay
//!   fault analysis.
//! * [`TruthTable`] — an exhaustive single-output function over `n` ternary
//!   inputs, the artifact produced by defect characterization (the paper's
//!   SPICE-to-library-model step) and consumed by gate-level simulation.
//!
//! # Example
//!
//! ```
//! use icd_logic::{Lv, TruthTable};
//!
//! // A 2-input NAND as a truth table.
//! let nand = TruthTable::from_fn(2, |bits| !(bits[0] & bits[1]));
//! assert_eq!(nand.eval_bits(&[true, true]), Lv::Zero);
//! assert_eq!(nand.eval_bits(&[true, false]), Lv::One);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]
#![warn(missing_docs)]

mod lv;
pub mod packed;
mod pattern;
mod truth_table;

pub use lv::Lv;
pub use packed::{PackedEval, PackedPatternSet, PackedWord};
pub use pattern::{Pattern, PatternPair};
pub use truth_table::{TruthTable, TruthTableError, MAX_TRUTH_TABLE_INPUTS};
