//! Property-based tests for the ternary logic foundation.

#![allow(clippy::unwrap_used, clippy::panic)] // test code

use icd_logic::{Lv, Pattern, TruthTable};
use proptest::prelude::*;

fn arb_lv() -> impl Strategy<Value = Lv> {
    prop_oneof![Just(Lv::Zero), Just(Lv::One), Just(Lv::U)]
}

fn arb_pattern(max_len: usize) -> impl Strategy<Value = Pattern> {
    prop::collection::vec(arb_lv(), 0..=max_len).prop_map(Pattern::new)
}

proptest! {
    #[test]
    fn meet_is_associative(a in arb_lv(), b in arb_lv(), c in arb_lv()) {
        prop_assert_eq!(a.meet(b).meet(c), a.meet(b.meet(c)));
    }

    #[test]
    fn meet_with_u_is_absorbing(a in arb_lv()) {
        prop_assert_eq!(Lv::U.meet(a), Lv::U);
        prop_assert_eq!(a.meet(Lv::U), Lv::U);
    }

    #[test]
    fn and_or_absorption_on_known(a in any::<bool>(), b in any::<bool>()) {
        let (a, b) = (Lv::from(a), Lv::from(b));
        prop_assert_eq!(a & (a | b), a);
        prop_assert_eq!(a | (a & b), a);
    }

    #[test]
    fn pattern_display_parse_round_trip(p in arb_pattern(64)) {
        let s = p.to_string();
        let back: Pattern = s.parse().unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn conflicting_positions_symmetric(a in arb_pattern(32), b in arb_pattern(32)) {
        let n = a.len().min(b.len());
        let a = Pattern::new(a.values()[..n].to_vec());
        let b = Pattern::new(b.values()[..n].to_vec());
        prop_assert_eq!(a.conflicting_positions(&b), b.conflicting_positions(&a));
    }

    #[test]
    fn truth_table_ternary_eval_conservative(
        entries in prop::collection::vec(any::<bool>(), 8),
        values in prop::collection::vec(arb_lv(), 3),
    ) {
        // A ternary evaluation that returns a known value must equal the
        // boolean evaluation of every completion of the inputs.
        let t = TruthTable::from_entries(
            3,
            entries.iter().copied().map(Lv::from).collect(),
        ).unwrap();
        let out = t.eval(&values).unwrap();
        if out.is_known() {
            // Enumerate completions.
            let unknown: Vec<usize> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| !v.is_known())
                .map(|(i, _)| i)
                .collect();
            for combo in 0..(1usize << unknown.len()) {
                let mut bits: Vec<bool> = values
                    .iter()
                    .map(|v| v.to_bool().unwrap_or(false))
                    .collect();
                for (j, pos) in unknown.iter().enumerate() {
                    bits[*pos] = (combo >> j) & 1 == 1;
                }
                prop_assert_eq!(t.eval_bits(&bits), out);
            }
        }
    }
}
