//! Differential property tests for the packed (bit-parallel) kernel: on
//! every lane, plane arithmetic must agree with the scalar [`Lv`]
//! operators and [`PackedEval`] with [`TruthTable::eval`] — including
//! unknown inputs, unknown table entries and pattern counts that do not
//! fill a whole word.

#![allow(clippy::unwrap_used, clippy::panic)] // test code

use icd_logic::{Lv, PackedEval, PackedPatternSet, PackedWord, Pattern, TruthTable};
use proptest::prelude::*;

fn arb_lv() -> impl Strategy<Value = Lv> {
    prop_oneof![Just(Lv::Zero), Just(Lv::One), Just(Lv::U)]
}

fn arb_lanes() -> impl Strategy<Value = Vec<Lv>> {
    prop::collection::vec(arb_lv(), 1..=64)
}

/// Scalar Kleene XOR (Lv has no `BitXor` impl; any `U` poisons).
fn lv_xor(a: Lv, b: Lv) -> Lv {
    match (a.to_bool(), b.to_bool()) {
        (Some(x), Some(y)) => Lv::from(x ^ y),
        _ => Lv::U,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `from_lanes` → `lane` round-trips, and lanes beyond the input
    /// length read back as `U` (unknown plane is zero there).
    #[test]
    fn word_lane_round_trip(lanes in arb_lanes()) {
        let w = PackedWord::from_lanes(&lanes);
        for (i, &v) in lanes.iter().enumerate() {
            prop_assert_eq!(w.lane(i), v);
        }
        for i in lanes.len()..64 {
            prop_assert_eq!(w.lane(i), Lv::U);
        }
    }

    /// Plane AND/OR/XOR/NOT agree with the scalar `Lv` operators on
    /// every lane.
    #[test]
    fn plane_ops_match_scalar_ops(a in arb_lanes(), b in arb_lanes()) {
        let n = a.len().min(b.len());
        let wa = PackedWord::from_lanes(&a[..n]);
        let wb = PackedWord::from_lanes(&b[..n]);
        for i in 0..n {
            prop_assert_eq!(wa.and(wb).lane(i), a[i] & b[i], "and lane {}", i);
            prop_assert_eq!(wa.or(wb).lane(i), a[i] | b[i], "or lane {}", i);
            prop_assert_eq!(wa.xor(wb).lane(i), lv_xor(a[i], b[i]), "xor lane {}", i);
            prop_assert_eq!((!wa).lane(i), !a[i], "not lane {}", i);
            prop_assert_eq!(
                (wa.conflicts(wb) >> i) & 1 == 1,
                a[i].conflicts_with(b[i]),
                "conflicts lane {}", i
            );
        }
    }

    /// `PackedEval::eval_word` equals `TruthTable::eval` on every lane,
    /// for tables and inputs that may both contain `U`.
    #[test]
    fn eval_word_matches_ternary_eval(
        entries in prop::collection::vec(arb_lv(), 8),
        lanes in prop::collection::vec(prop::collection::vec(arb_lv(), 3), 1..=64),
    ) {
        let t = TruthTable::from_entries(3, entries).unwrap();
        let eval = PackedEval::from_table(&t);
        let words: Vec<PackedWord> = (0..3)
            .map(|pin| {
                let column: Vec<Lv> = lanes.iter().map(|l| l[pin]).collect();
                PackedWord::from_lanes(&column)
            })
            .collect();
        let out = eval.eval_word(&words).unwrap();
        for (i, lane) in lanes.iter().enumerate() {
            prop_assert_eq!(out.lane(i), t.eval(lane).unwrap(), "lane {}", i);
        }
    }

    /// The binary fast path equals `eval_bits` for fully specified
    /// inputs on a fully specified table.
    #[test]
    fn eval_binary_word_matches_eval_bits(
        entries in prop::collection::vec(any::<bool>(), 8),
        lanes in prop::collection::vec(prop::collection::vec(any::<bool>(), 3), 1..=64),
    ) {
        let t = TruthTable::from_entries(
            3,
            entries.iter().copied().map(Lv::from).collect(),
        ).unwrap();
        let eval = PackedEval::from_table(&t);
        let words: Vec<u64> = (0..3)
            .map(|pin| {
                lanes.iter().enumerate().fold(0u64, |acc, (i, l)| {
                    acc | (u64::from(l[pin]) << i)
                })
            })
            .collect();
        let out = eval.eval_binary_word(&words);
        for (i, lane) in lanes.iter().enumerate() {
            prop_assert_eq!(
                (out >> i) & 1 == 1,
                t.eval_bits(lane) == Lv::One,
                "lane {}", i
            );
        }
    }

    /// `PackedPatternSet` round-trips arbitrary ternary patterns,
    /// including counts that do not fill the last word; the tail lanes
    /// are pinned to `Zero`.
    #[test]
    fn pattern_set_round_trip(
        width in 1usize..6,
        count in 1usize..130,
        seed in any::<u64>(),
    ) {
        // Cheap deterministic lane values from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            match (state >> 33) % 3 {
                0 => Lv::Zero,
                1 => Lv::One,
                _ => Lv::U,
            }
        };
        let patterns: Vec<Pattern> = (0..count)
            .map(|_| Pattern::new((0..width).map(|_| next()).collect::<Vec<Lv>>()))
            .collect();
        let set = PackedPatternSet::from_patterns(&patterns).unwrap();
        prop_assert_eq!(set.width(), width);
        prop_assert_eq!(set.num_patterns(), count);
        prop_assert_eq!(set.num_words(), count.div_ceil(64));
        for (t, p) in patterns.iter().enumerate() {
            prop_assert_eq!(&set.pattern(t), p, "pattern {}", t);
            for pin in 0..width {
                prop_assert_eq!(set.value(pin, t), p[pin]);
            }
        }
        // Tail lanes beyond the pattern count are pinned to Zero.
        let last = set.num_words() - 1;
        for pin in 0..width {
            let w = set.word(pin, last);
            for lane in 0..64 {
                if last * 64 + lane >= count {
                    prop_assert_eq!(w.lane(lane), Lv::Zero);
                }
            }
        }
    }
}
