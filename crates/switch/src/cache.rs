//! Shard-guarded memoization of per-cell switch-level artifacts.
//!
//! Exhaustive truth-table extraction ([`CellNetlist::truth_table`]) costs
//! `2^n` steady-state solves per cell. A diagnosis batch analyzes many
//! suspected gates of the *same* cell type, so the table only needs to be
//! derived once per type and can then be shared — including across
//! threads, which is why the cache is guarded by sharded [`Mutex`]es
//! instead of requiring `&mut self`.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use icd_logic::TruthTable;

use crate::{CellNetlist, SwitchError};

/// Number of independent shards; a small power of two keeps contention
/// negligible for the ~22-cell standard library while staying cheap.
const SHARDS: usize = 8;

/// A thread-safe, keyed-by-cell-name cache of exhaustively derived
/// [`TruthTable`]s.
///
/// Tables are stored behind [`Arc`] so concurrent consumers share one
/// allocation. Lookups on different cells hash to independent shards; a
/// poisoned shard (a panic while holding the lock) is recovered rather
/// than propagated, preserving the workspace no-panic guarantee.
#[derive(Debug, Default)]
pub struct TruthTableCache {
    shards: [Mutex<HashMap<String, Arc<TruthTable>>>; SHARDS],
    hits: AtomicUsize,
    misses: AtomicUsize,
}

fn lock_shard<T>(shard: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic in another thread while it held the lock cannot corrupt a
    // HashMap insert/lookup in a way we care about: recover the guard.
    match shard.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl TruthTableCache {
    /// An empty cache.
    pub fn new() -> Self {
        TruthTableCache::default()
    }

    fn shard_for(&self, name: &str) -> &Mutex<HashMap<String, Arc<TruthTable>>> {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// The cell's truth table, derived on first use and shared afterwards.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SwitchError`] when the (first) exhaustive
    /// derivation fails; failures are not cached.
    pub fn truth_table(&self, cell: &CellNetlist) -> Result<Arc<TruthTable>, SwitchError> {
        let shard = self.shard_for(cell.name());
        if let Some(t) = lock_shard(shard).get(cell.name()) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(t));
        }
        // Derive outside the lock: 2^n solves can be milliseconds and
        // other cell types must not wait on this shard meanwhile. Two
        // threads may race on the same cold cell; both derive the same
        // table and the second insert is a harmless overwrite.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let table = Arc::new(cell.truth_table()?);
        lock_shard(shard).insert(cell.name().to_owned(), Arc::clone(&table));
        Ok(table)
    }

    /// Seeds the cache with an already-derived table (a snapshot restore).
    /// Counts as neither hit nor miss; a later [`TruthTableCache::truth_table`]
    /// lookup on the same cell is a hit that never runs the `2^n` solves.
    pub fn preload(&self, name: &str, table: Arc<TruthTable>) {
        lock_shard(self.shard_for(name)).insert(name.to_owned(), table);
    }

    /// Every cached `(cell name, table)` pair, sorted by name — the
    /// deterministic iteration order a snapshot writer needs.
    pub fn snapshot(&self) -> Vec<(String, Arc<TruthTable>)> {
        let mut all: Vec<(String, Arc<TruthTable>)> = self
            .shards
            .iter()
            .flat_map(|s| {
                lock_shard(s)
                    .iter()
                    .map(|(k, v)| (k.clone(), Arc::clone(v)))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Number of distinct cell types currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).len()).sum()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to derive the table.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Records the cache counters into the installed [`icd_obs`]
    /// collector (no-op when none is): the lookup *total* is
    /// scheduling-stable, while the hit/miss split is timing-class —
    /// two threads racing on the same cold cell both derive and both
    /// count a miss.
    pub fn observe(&self) {
        let (hits, misses) = (self.hits() as u64, self.misses() as u64);
        icd_obs::counter(
            "cache.table.lookups",
            hits + misses,
            icd_obs::Stability::Stable,
        );
        icd_obs::counter("cache.table.hits", hits, icd_obs::Stability::Timing);
        icd_obs::counter("cache.table.misses", misses, icd_obs::Stability::Timing);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellNetlistBuilder;

    fn inverter() -> CellNetlist {
        let mut b = CellNetlistBuilder::new("INV");
        let a = b.input("A");
        let z = b.output("Z");
        b.pmos("P0", a, b.vdd(), z);
        b.nmos("N0", a, b.gnd(), z);
        b.finish().unwrap()
    }

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_allocation() {
        let cache = TruthTableCache::new();
        let inv = inverter();
        let t1 = cache.truth_table(&inv).unwrap();
        let t2 = cache.truth_table(&inv).unwrap();
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(*t1, inv.truth_table().unwrap());
    }

    #[test]
    fn observe_exports_hand_counted_hit_miss_counters() {
        let collector = icd_obs::Collector::new();
        let cache = TruthTableCache::new();
        let inv = inverter();
        // Hand-counted: 1 miss (cold), then 2 hits.
        for _ in 0..3 {
            cache.truth_table(&inv).unwrap();
        }
        {
            let _active = collector.install_local();
            cache.observe();
        }
        let snap = collector.snapshot();
        assert_eq!(snap.counters["cache.table.lookups"].0, 3);
        assert_eq!(snap.counters["cache.table.hits"].0, 2);
        assert_eq!(snap.counters["cache.table.misses"].0, 1);
        assert_eq!(
            snap.counters["cache.table.lookups"].1,
            icd_obs::Stability::Stable
        );
        assert_eq!(
            snap.counters["cache.table.hits"].1,
            icd_obs::Stability::Timing
        );
    }

    #[test]
    fn preload_makes_the_first_lookup_a_hit() {
        let cache = TruthTableCache::new();
        let inv = inverter();
        let table = Arc::new(inv.truth_table().unwrap());
        cache.preload(inv.name(), Arc::clone(&table));
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        let got = cache.truth_table(&inv).unwrap();
        assert!(Arc::ptr_eq(&got, &table));
        assert_eq!((cache.hits(), cache.misses()), (1, 0));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let cache = TruthTableCache::new();
        let inv = inverter();
        cache.truth_table(&inv).unwrap();
        let mut b = CellNetlistBuilder::new("BUFX");
        let a = b.input("A");
        let mid = b.net("mid");
        let z = b.output("Z");
        b.pmos("P0", a, b.vdd(), mid);
        b.nmos("N0", a, b.gnd(), mid);
        b.pmos("P1", mid, b.vdd(), z);
        b.nmos("N1", mid, b.gnd(), z);
        let buf = b.finish().unwrap();
        cache.truth_table(&buf).unwrap();
        let snap = cache.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["BUFX", "INV"]);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = Arc::new(TruthTableCache::new());
        let inv = Arc::new(inverter());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let inv = Arc::clone(&inv);
                std::thread::spawn(move || cache.truth_table(&inv).unwrap())
            })
            .collect();
        let reference = inv.truth_table().unwrap();
        for h in handles {
            assert_eq!(*h.join().unwrap(), reference);
        }
        assert_eq!(cache.len(), 1);
    }
}
