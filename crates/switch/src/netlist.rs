use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifier of a net inside a [`CellNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TNetId(pub(crate) u32);

impl TNetId {
    /// The raw index backing this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TNetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tn{}", self.0)
    }
}

/// Identifier of a transistor inside a [`CellNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransistorId(pub(crate) u32);

impl TransistorId {
    /// The raw index backing this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TransistorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tr{}", self.0)
    }
}

/// nMOS or pMOS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransistorKind {
    /// Conducts when the gate is `1`.
    Nmos,
    /// Conducts when the gate is `0`.
    Pmos,
}

/// One of the three terminals of a transistor — the unit in which the paper
/// reports suspects (`T5G`, `N0S`, `P4S`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Terminal {
    /// The gate (control) terminal.
    Gate,
    /// The source terminal.
    Source,
    /// The drain terminal.
    Drain,
}

impl fmt::Display for Terminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Terminal::Gate => 'G',
            Terminal::Source => 'S',
            Terminal::Drain => 'D',
        };
        write!(f, "{c}")
    }
}

/// A single MOS switch.
///
/// `source`/`drain` are interchangeable electrically; the distinction is
/// kept because the paper reports suspects per named terminal ("the drain
/// of transistor N2").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transistor {
    /// nMOS or pMOS.
    pub kind: TransistorKind,
    /// Net connected to the gate terminal.
    pub gate: TNetId,
    /// Net connected to the source terminal.
    pub source: TNetId,
    /// Net connected to the drain terminal.
    pub drain: TNetId,
    /// Schematic name (`"T5"`, `"N0"`, `"P4"`, …).
    pub name: String,
}

impl Transistor {
    /// The net attached to a terminal.
    pub fn terminal_net(&self, terminal: Terminal) -> TNetId {
        match terminal {
            Terminal::Gate => self.gate,
            Terminal::Source => self.source,
            Terminal::Drain => self.drain,
        }
    }

    /// Given one channel net, the net on the other side of the channel, or
    /// `None` when `net` is not a channel terminal of this transistor.
    pub fn channel_other_side(&self, net: TNetId) -> Option<TNetId> {
        if net == self.source {
            Some(self.drain)
        } else if net == self.drain {
            Some(self.source)
        } else {
            None
        }
    }
}

/// Role of a net within a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetClass {
    /// The positive supply rail (always `1`).
    Vdd,
    /// The ground rail (always `0`).
    Gnd,
    /// The `i`-th cell input.
    Input(usize),
    /// The cell output.
    Output,
    /// An internal net.
    Internal,
}

/// Errors produced while building or simulating cell netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchError {
    /// Two nets were declared with the same name.
    DuplicateNet(String),
    /// Two transistors were declared with the same name.
    DuplicateTransistor(String),
    /// The cell has no output net.
    NoOutput(String),
    /// A transistor's source and drain are the same net.
    DegenerateChannel(String),
    /// The output net is not connected to any transistor channel.
    UnconnectedOutput(String),
    /// `solve` was called with the wrong number of input values.
    WrongArity {
        /// Inputs the cell declares.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// The relaxation did not reach a fixed point (feedback structure).
    NoConvergence(String),
    /// The cell declares more inputs than exhaustive characterization
    /// supports (`2^inputs` vectors are enumerated).
    TooManyInputs {
        /// The cell being built.
        cell: String,
        /// Inputs declared.
        inputs: usize,
        /// The supported maximum.
        max: usize,
    },
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchError::DuplicateNet(n) => write!(f, "net {n:?} declared twice"),
            SwitchError::DuplicateTransistor(n) => {
                write!(f, "transistor {n:?} declared twice")
            }
            SwitchError::NoOutput(c) => write!(f, "cell {c:?} has no output net"),
            SwitchError::DegenerateChannel(n) => {
                write!(f, "transistor {n:?} has source == drain")
            }
            SwitchError::UnconnectedOutput(c) => {
                write!(f, "cell {c:?} output touches no transistor channel")
            }
            SwitchError::WrongArity { expected, got } => {
                write!(f, "cell expects {expected} input values, got {got}")
            }
            SwitchError::NoConvergence(c) => {
                write!(f, "switch-level relaxation did not converge for cell {c:?}")
            }
            SwitchError::TooManyInputs { cell, inputs, max } => {
                write!(
                    f,
                    "cell {cell:?} declares {inputs} inputs, more than the supported {max}"
                )
            }
        }
    }
}

impl Error for SwitchError {}

/// A single-output CMOS cell at transistor level.
///
/// Build with [`CellNetlistBuilder`]; evaluate with
/// [`solve`](CellNetlist::solve) and friends (defined in the simulator
/// module).
#[derive(Debug, Clone)]
pub struct CellNetlist {
    pub(crate) name: String,
    pub(crate) net_names: Vec<String>,
    pub(crate) net_class: Vec<NetClass>,
    pub(crate) transistors: Vec<Transistor>,
    pub(crate) inputs: Vec<TNetId>,
    pub(crate) output: TNetId,
    pub(crate) vdd: TNetId,
    pub(crate) gnd: TNetId,
    /// Channel adjacency: for each net, (transistor, other side).
    pub(crate) channel_adj: Vec<Vec<(TransistorId, TNetId)>>,
    nets_by_name: HashMap<String, TNetId>,
    transistors_by_name: HashMap<String, TransistorId>,
}

impl CellNetlist {
    /// The cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered input nets.
    pub fn inputs(&self) -> &[TNetId] {
        &self.inputs
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// The output net.
    pub fn output(&self) -> TNetId {
        self.output
    }

    /// The VDD rail net.
    pub fn vdd(&self) -> TNetId {
        self.vdd
    }

    /// The GND rail net.
    pub fn gnd(&self) -> TNetId {
        self.gnd
    }

    /// Number of nets (rails included).
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// Number of transistors — the paper's "complexity" column.
    pub fn num_transistors(&self) -> usize {
        self.transistors.len()
    }

    /// The name of a net.
    pub fn net_name(&self, net: TNetId) -> &str {
        &self.net_names[net.index()]
    }

    /// The role of a net.
    pub fn net_class(&self, net: TNetId) -> NetClass {
        self.net_class[net.index()]
    }

    /// Whether a net is a supply rail.
    pub fn is_rail(&self, net: TNetId) -> bool {
        matches!(self.net_class(net), NetClass::Vdd | NetClass::Gnd)
    }

    /// The transistor behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this cell.
    pub fn transistor(&self, id: TransistorId) -> &Transistor {
        &self.transistors[id.index()]
    }

    /// All transistors with their ids.
    pub fn transistors(&self) -> impl Iterator<Item = (TransistorId, &Transistor)> {
        self.transistors
            .iter()
            .enumerate()
            .map(|(i, t)| (TransistorId(i as u32), t))
    }

    /// All net ids.
    pub fn nets(&self) -> impl Iterator<Item = TNetId> {
        (0..self.net_names.len() as u32).map(TNetId)
    }

    /// Finds a net by name.
    pub fn find_net(&self, name: &str) -> Option<TNetId> {
        self.nets_by_name.get(name).copied()
    }

    /// Finds a transistor by name.
    pub fn find_transistor(&self, name: &str) -> Option<TransistorId> {
        self.transistors_by_name.get(name).copied()
    }

    /// Transistors whose channel touches `net`, with the opposite channel
    /// net.
    pub fn channel_neighbors(&self, net: TNetId) -> &[(TransistorId, TNetId)] {
        &self.channel_adj[net.index()]
    }

    /// Transistors whose *gate* is connected to `net`.
    pub fn gate_loads(&self, net: TNetId) -> impl Iterator<Item = TransistorId> + '_ {
        self.transistors
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.gate == net)
            .map(|(i, _)| TransistorId(i as u32))
    }

    /// A human-readable terminal name in the paper's style (`"T5G"`).
    pub fn terminal_name(&self, transistor: TransistorId, terminal: Terminal) -> String {
        format!("{}{}", self.transistor(transistor).name, terminal)
    }
}

/// Builder for [`CellNetlist`].
///
/// Rails are created implicitly; nets are created on first use through
/// [`input`](CellNetlistBuilder::input), [`output`](CellNetlistBuilder::output)
/// and [`net`](CellNetlistBuilder::net).
#[derive(Debug)]
pub struct CellNetlistBuilder {
    name: String,
    net_names: Vec<String>,
    net_class: Vec<NetClass>,
    nets_by_name: HashMap<String, TNetId>,
    transistors: Vec<Transistor>,
    transistors_by_name: HashMap<String, TransistorId>,
    inputs: Vec<TNetId>,
    output: Option<TNetId>,
    error: Option<SwitchError>,
}

impl CellNetlistBuilder {
    /// Starts a cell. VDD and GND exist from the outset.
    pub fn new(name: impl Into<String>) -> Self {
        let mut b = CellNetlistBuilder {
            name: name.into(),
            net_names: Vec::new(),
            net_class: Vec::new(),
            nets_by_name: HashMap::new(),
            transistors: Vec::new(),
            transistors_by_name: HashMap::new(),
            inputs: Vec::new(),
            output: None,
            error: None,
        };
        b.raw_net("VDD", NetClass::Vdd);
        b.raw_net("GND", NetClass::Gnd);
        b
    }

    fn raw_net(&mut self, name: &str, class: NetClass) -> TNetId {
        if self.nets_by_name.contains_key(name) {
            self.error
                .get_or_insert(SwitchError::DuplicateNet(name.to_owned()));
            return self.nets_by_name[name];
        }
        let id = TNetId(self.net_names.len() as u32);
        self.net_names.push(name.to_owned());
        self.net_class.push(class);
        self.nets_by_name.insert(name.to_owned(), id);
        id
    }

    /// The VDD rail.
    pub fn vdd(&self) -> TNetId {
        TNetId(0)
    }

    /// The GND rail.
    pub fn gnd(&self) -> TNetId {
        TNetId(1)
    }

    /// Declares the next cell input.
    pub fn input(&mut self, name: &str) -> TNetId {
        let idx = self.inputs.len();
        let id = self.raw_net(name, NetClass::Input(idx));
        self.inputs.push(id);
        id
    }

    /// Declares the cell output.
    pub fn output(&mut self, name: &str) -> TNetId {
        let id = self.raw_net(name, NetClass::Output);
        self.output = Some(id);
        id
    }

    /// Declares an internal net.
    pub fn net(&mut self, name: &str) -> TNetId {
        self.raw_net(name, NetClass::Internal)
    }

    fn transistor(
        &mut self,
        kind: TransistorKind,
        name: &str,
        gate: TNetId,
        source: TNetId,
        drain: TNetId,
    ) -> TransistorId {
        if source == drain {
            self.error
                .get_or_insert(SwitchError::DegenerateChannel(name.to_owned()));
        }
        if self.transistors_by_name.contains_key(name) {
            self.error
                .get_or_insert(SwitchError::DuplicateTransistor(name.to_owned()));
            return self.transistors_by_name[name];
        }
        let id = TransistorId(self.transistors.len() as u32);
        self.transistors.push(Transistor {
            kind,
            gate,
            source,
            drain,
            name: name.to_owned(),
        });
        self.transistors_by_name.insert(name.to_owned(), id);
        id
    }

    /// Adds an nMOS switch (conducts when `gate` is `1`).
    pub fn nmos(
        &mut self,
        name: &str,
        gate: TNetId,
        source: TNetId,
        drain: TNetId,
    ) -> TransistorId {
        self.transistor(TransistorKind::Nmos, name, gate, source, drain)
    }

    /// Adds a pMOS switch (conducts when `gate` is `0`).
    pub fn pmos(
        &mut self,
        name: &str,
        gate: TNetId,
        source: TNetId,
        drain: TNetId,
    ) -> TransistorId {
        self.transistor(TransistorKind::Pmos, name, gate, source, drain)
    }

    /// Validates and produces the cell.
    ///
    /// # Errors
    ///
    /// Reports the first structural problem: duplicate names, degenerate
    /// channels, a missing or channel-unconnected output.
    pub fn finish(self) -> Result<CellNetlist, SwitchError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        // Characterization enumerates 2^inputs vectors; cap the arity here
        // so a malformed cell description fails structurally instead of
        // overflowing `1usize << inputs` (or allocating 2^n tables) later.
        if self.inputs.len() > icd_logic::MAX_TRUTH_TABLE_INPUTS {
            return Err(SwitchError::TooManyInputs {
                cell: self.name,
                inputs: self.inputs.len(),
                max: icd_logic::MAX_TRUTH_TABLE_INPUTS,
            });
        }
        let output = self
            .output
            .ok_or_else(|| SwitchError::NoOutput(self.name.clone()))?;
        let mut channel_adj: Vec<Vec<(TransistorId, TNetId)>> =
            vec![Vec::new(); self.net_names.len()];
        for (i, t) in self.transistors.iter().enumerate() {
            let id = TransistorId(i as u32);
            channel_adj[t.source.index()].push((id, t.drain));
            channel_adj[t.drain.index()].push((id, t.source));
        }
        if channel_adj[output.index()].is_empty() {
            return Err(SwitchError::UnconnectedOutput(self.name));
        }
        Ok(CellNetlist {
            name: self.name,
            net_names: self.net_names,
            net_class: self.net_class,
            transistors: self.transistors,
            inputs: self.inputs,
            output,
            vdd: TNetId(0),
            gnd: TNetId(1),
            channel_adj,
            nets_by_name: self.nets_by_name,
            transistors_by_name: self.transistors_by_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inverter() -> CellNetlist {
        let mut b = CellNetlistBuilder::new("INV");
        let a = b.input("A");
        let z = b.output("Z");
        b.pmos("P0", a, b.vdd(), z);
        b.nmos("N0", a, b.gnd(), z);
        b.finish().unwrap()
    }

    #[test]
    fn too_many_inputs_rejected_at_finish() {
        // Regression: an over-wide cell must fail structurally here, before
        // exhaustive characterization tries to enumerate 2^n vectors.
        let mut b = CellNetlistBuilder::new("WIDE");
        let z = b.output("Z");
        let mut last = b.vdd();
        for i in 0..21 {
            let g = b.input(&format!("I{i}"));
            let next = if i == 20 { z } else { b.net(&format!("m{i}")) };
            b.nmos(&format!("N{i}"), g, last, next);
            last = next;
        }
        assert!(matches!(
            b.finish(),
            Err(SwitchError::TooManyInputs {
                inputs: 21,
                max: 20,
                ..
            })
        ));
    }

    #[test]
    fn build_inverter() {
        let inv = inverter();
        assert_eq!(inv.num_transistors(), 2);
        assert_eq!(inv.num_inputs(), 1);
        assert_eq!(inv.net_name(inv.output()), "Z");
        assert_eq!(inv.channel_neighbors(inv.output()).len(), 2);
        assert_eq!(inv.find_transistor("P0").map(|t| t.index()), Some(0));
    }

    #[test]
    fn terminal_names_match_paper_style() {
        let inv = inverter();
        let n0 = inv.find_transistor("N0").unwrap();
        assert_eq!(inv.terminal_name(n0, Terminal::Source), "N0S");
        assert_eq!(inv.terminal_name(n0, Terminal::Gate), "N0G");
    }

    #[test]
    fn missing_output_rejected() {
        let mut b = CellNetlistBuilder::new("BAD");
        let a = b.input("A");
        b.nmos("N0", a, b.gnd(), a);
        // source == drain triggers first; rebuild without it.
        let mut b = CellNetlistBuilder::new("BAD");
        let _ = b.input("A");
        assert!(matches!(b.finish(), Err(SwitchError::NoOutput(_))));
    }

    #[test]
    fn degenerate_channel_rejected() {
        let mut b = CellNetlistBuilder::new("BAD");
        let a = b.input("A");
        let z = b.output("Z");
        b.nmos("N0", a, z, z);
        assert!(matches!(b.finish(), Err(SwitchError::DegenerateChannel(_))));
    }

    #[test]
    fn unconnected_output_rejected() {
        let mut b = CellNetlistBuilder::new("BAD");
        let a = b.input("A");
        let _z = b.output("Z");
        let inner = b.net("n1");
        b.nmos("N0", a, b.gnd(), inner);
        assert!(matches!(b.finish(), Err(SwitchError::UnconnectedOutput(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = CellNetlistBuilder::new("BAD");
        let a = b.input("A");
        let _ = b.input("A");
        let z = b.output("Z");
        b.nmos("N0", a, b.gnd(), z);
        assert!(matches!(b.finish(), Err(SwitchError::DuplicateNet(_))));
    }

    #[test]
    fn channel_other_side() {
        let inv = inverter();
        let n0 = inv.find_transistor("N0").unwrap();
        let t = inv.transistor(n0);
        assert_eq!(t.channel_other_side(inv.gnd()), Some(inv.output()));
        assert_eq!(t.channel_other_side(inv.output()), Some(inv.gnd()));
        let a = inv.find_net("A").unwrap();
        assert_eq!(t.channel_other_side(a), None);
    }

    #[test]
    fn gate_loads() {
        let inv = inverter();
        let a = inv.find_net("A").unwrap();
        assert_eq!(inv.gate_loads(a).count(), 2);
        assert_eq!(inv.gate_loads(inv.output()).count(), 0);
    }
}
