use icd_logic::{Lv, TruthTable};

use crate::netlist::{CellNetlist, SwitchError, TNetId, TransistorId, TransistorKind};

/// Conduction state of a switch under the current gate values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Conduction {
    On,
    Off,
    Maybe,
}

/// External constraints applied to one switch-level evaluation.
///
/// `Forcing` is the single hook shared by the two consumers of the
/// simulator:
///
/// * **Critical path tracing** pins a net to the complement of its
///   fault-free value ([`Forcing::pin`]) or overrides the effective gate
///   value of *one* transistor ([`Forcing::override_gate`]) to test whether
///   the cell output flips.
/// * **Defect emulation** expresses switch-level fault models: a
///   stuck-on/off transistor is a gate override, a hard short to a rail is a
///   pin, and a dominant bridge is [`Forcing::bridge`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Forcing {
    pinned: Vec<(TNetId, Lv)>,
    gate_overrides: Vec<(TransistorId, Lv)>,
    bridges: Vec<(TNetId, TNetId)>,
}

impl Forcing {
    /// No constraints — the fault-free evaluation.
    pub fn none() -> Self {
        Forcing::default()
    }

    /// Pins `net` to `value`: the net behaves as an ideal source.
    #[must_use]
    pub fn pin(mut self, net: TNetId, value: Lv) -> Self {
        self.pinned.push((net, value));
        self
    }

    /// Overrides the *effective* gate value of a single transistor without
    /// touching the net driving it (the paper flips individual gate
    /// terminals, e.g. `T4G`, not the whole input net).
    #[must_use]
    pub fn override_gate(mut self, transistor: TransistorId, value: Lv) -> Self {
        self.gate_overrides.push((transistor, value));
        self
    }

    /// Adds a dominant bridge: `victim` takes `aggressor`'s value.
    #[must_use]
    pub fn bridge(mut self, victim: TNetId, aggressor: TNetId) -> Self {
        self.bridges.push((victim, aggressor));
        self
    }

    /// Whether no constraint is present.
    pub fn is_none(&self) -> bool {
        self.pinned.is_empty() && self.gate_overrides.is_empty() && self.bridges.is_empty()
    }

    fn gate_override_for(&self, id: TransistorId) -> Option<Lv> {
        self.gate_overrides
            .iter()
            .rev()
            .find(|(t, _)| *t == id)
            .map(|(_, v)| *v)
    }
}

/// The steady-state value of every net after one evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeValues {
    values: Vec<Lv>,
}

impl NodeValues {
    /// The value of one net.
    pub fn value(&self, net: TNetId) -> Lv {
        self.values[net.index()]
    }

    /// All values, indexed by net id.
    pub fn values(&self) -> &[Lv] {
        &self.values
    }

    /// Nets whose values definitely differ between `self` and `other`.
    pub fn conflicting_nets(&self, other: &NodeValues) -> Vec<TNetId> {
        self.values
            .iter()
            .zip(other.values.iter())
            .enumerate()
            .filter(|(_, (a, b))| a.conflicts_with(**b))
            .map(|(i, _)| TNetId(i as u32))
            .collect()
    }
}

/// Result of a two-pattern evaluation (see
/// [`CellNetlist::solve_two_pattern`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoPatternOutcome {
    /// Steady state under the launch vector.
    pub launch: NodeValues,
    /// Fully settled steady state under the capture vector.
    pub capture_settled: NodeValues,
    /// Capture-time snapshot when the listed slow nets / transistors have
    /// not yet transitioned: the value the tester samples.
    pub capture_late: NodeValues,
}

impl CellNetlist {
    /// Evaluates the cell's steady state.
    ///
    /// A net takes a known value only when it has at least one definitely
    /// conducting path to fixed nodes and *every* possibly conducting path
    /// reaches fixed nodes of that same value; otherwise it is [`Lv::U`]
    /// (floating or fighting). Fixed nodes are the rails, the inputs and
    /// pinned/bridged nets.
    ///
    /// # Errors
    ///
    /// [`SwitchError::WrongArity`] when `inputs.len()` differs from the
    /// cell's input count; [`SwitchError::NoConvergence`] is a guard that
    /// cannot trigger for well-formed cells (oscillating feedback is damped
    /// to `U`).
    pub fn solve(&self, inputs: &[Lv], forcing: &Forcing) -> Result<NodeValues, SwitchError> {
        self.solve_inner(inputs, forcing, None)
    }

    fn solve_inner(
        &self,
        inputs: &[Lv],
        forcing: &Forcing,
        previous: Option<&NodeValues>,
    ) -> Result<NodeValues, SwitchError> {
        if inputs.len() != self.num_inputs() {
            return Err(SwitchError::WrongArity {
                expected: self.num_inputs(),
                got: inputs.len(),
            });
        }
        let n = self.num_nets();

        // Fixed sources: rails, inputs, pins. Later entries win.
        let mut fixed: Vec<Option<Lv>> = vec![None; n];
        fixed[self.vdd.index()] = Some(Lv::One);
        fixed[self.gnd.index()] = Some(Lv::Zero);
        for (i, &net) in self.inputs.iter().enumerate() {
            fixed[net.index()] = Some(inputs[i]);
        }
        for &(net, v) in &forcing.pinned {
            fixed[net.index()] = Some(v);
        }
        // Bridge victims are dynamically fixed at the aggressor's value.
        let bridge_victims: Vec<TNetId> = forcing.bridges.iter().map(|&(v, _)| v).collect();

        let mut values: Vec<Lv> = (0..n)
            .map(|i| fixed[i].unwrap_or_else(|| previous.map_or(Lv::U, |p| p.values[i])))
            .collect();
        for &v in &bridge_victims {
            values[v.index()] = Lv::U;
        }

        let conduction = |values: &[Lv], id: usize| -> Conduction {
            let t = &self.transistors[id];
            let g = forcing
                .gate_override_for(TransistorId(id as u32))
                .unwrap_or(values[t.gate.index()]);
            match (t.kind, g) {
                (TransistorKind::Nmos, Lv::One) | (TransistorKind::Pmos, Lv::Zero) => {
                    Conduction::On
                }
                (TransistorKind::Nmos, Lv::Zero) | (TransistorKind::Pmos, Lv::One) => {
                    Conduction::Off
                }
                (_, Lv::U) => Conduction::Maybe,
            }
        };

        // A net is a BFS source (path endpoint) when fixed or a bridge
        // victim; its current value is the source value.
        let mut is_source = vec![false; n];
        for i in 0..n {
            if fixed[i].is_some() {
                is_source[i] = true;
            }
        }
        for &v in &bridge_victims {
            is_source[v.index()] = true;
        }

        let max_iterations = 4 * n + 8;
        let damp_after = 2 * n + 4;
        let mut visited = vec![0u32; n];
        let mut stamp = 0u32;
        let mut stack: Vec<TNetId> = Vec::with_capacity(n);

        for iteration in 0..max_iterations {
            // In-place (Gauss-Seidel) sweep: each net's re-evaluation sees
            // the values already updated earlier in the same sweep. The
            // fixpoints are the same as for a parallel-update sweep, but
            // internally generated controls (clock-bar nets of latch
            // structures) settle before the channels they gate, avoiding
            // spurious overlap transients.
            let mut changed = false;

            // Re-evaluate every non-source net from channel connectivity.
            for net in 0..n {
                if is_source[net] {
                    continue;
                }
                // One BFS collecting reachable source values, tracking for
                // each whether the path was all-On (definite).
                let mut possible_zero = false;
                let mut possible_one = false;
                let mut possible_u = false;
                let mut definite_any = false;
                // Two passes: definite (On only), possible (On|Maybe).
                for definite_pass in [true, false] {
                    stamp += 1;
                    stack.clear();
                    stack.push(TNetId(net as u32));
                    visited[net] = stamp;
                    while let Some(cur) = stack.pop() {
                        for &(tid, other) in self.channel_neighbors(cur) {
                            let c = conduction(&values, tid.index());
                            let blocked =
                                c == Conduction::Off || (definite_pass && c == Conduction::Maybe);
                            if blocked {
                                continue;
                            }
                            let oi = other.index();
                            if is_source[oi] {
                                let v = values[oi];
                                if definite_pass {
                                    definite_any = true;
                                }
                                match v {
                                    Lv::Zero => possible_zero = true,
                                    Lv::One => possible_one = true,
                                    Lv::U => possible_u = true,
                                }
                                continue;
                            }
                            if visited[oi] != stamp {
                                visited[oi] = stamp;
                                stack.push(other);
                            }
                        }
                    }
                }
                // Fully isolated net: decays to U statically, retains its
                // previous-step charge in state-aware mode.
                let isolated = !(possible_zero || possible_one || possible_u);
                // Floating (no definite path), fighting, or any unknown
                // source: U. Otherwise all possible paths agree.
                let mut resolved = if isolated {
                    previous.map_or(Lv::U, |p| p.values[net])
                } else if possible_u || (possible_zero && possible_one) || !definite_any {
                    Lv::U
                } else if possible_one {
                    Lv::One
                } else {
                    Lv::Zero
                };
                if resolved != values[net] {
                    if iteration >= damp_after {
                        // Damp oscillation: a net still changing this late
                        // collapses to U and stays there.
                        resolved = Lv::U;
                    }
                    if resolved != values[net] {
                        values[net] = resolved;
                        changed = true;
                    }
                }
            }

            // Dominant bridges: the victim takes the aggressor's value.
            for &(victim, aggressor) in &forcing.bridges {
                let v = values[aggressor.index()];
                let vi = victim.index();
                if values[vi] != v {
                    let v = if iteration >= damp_after { Lv::U } else { v };
                    if values[vi] != v {
                        values[vi] = v;
                        changed = true;
                    }
                }
            }

            if !changed {
                return Ok(NodeValues { values });
            }
        }
        Err(SwitchError::NoConvergence(self.name.clone()))
    }

    /// Convenience wrapper for fully specified boolean inputs.
    ///
    /// # Errors
    ///
    /// Same as [`CellNetlist::solve`].
    pub fn solve_bits(&self, bits: &[bool], forcing: &Forcing) -> Result<NodeValues, SwitchError> {
        let inputs: Vec<Lv> = bits.iter().copied().map(Lv::from).collect();
        self.solve(&inputs, forcing)
    }

    /// Charge-retentive evaluation: like [`CellNetlist::solve`], but a net
    /// with **no** possibly conducting path to any source keeps its value
    /// from `previous` (dynamic charge storage) instead of decaying to
    /// `U`. Fights and unknown sources still produce `U`.
    ///
    /// This is the COSMOS-style dynamic mode that makes *sequential*
    /// cells (latches, scan flip-flops — the paper's future work)
    /// simulatable: feed the input sequence through
    /// [`CellNetlist::solve_sequence`] and isolated storage nodes hold
    /// their state between steps.
    ///
    /// # Errors
    ///
    /// Same as [`CellNetlist::solve`].
    pub fn solve_with_state(
        &self,
        inputs: &[Lv],
        forcing: &Forcing,
        previous: &NodeValues,
    ) -> Result<NodeValues, SwitchError> {
        self.solve_inner(inputs, forcing, Some(previous))
    }

    /// Evaluates an input sequence with charge retention between steps,
    /// starting from an all-`U` (power-up) state. Returns one
    /// [`NodeValues`] per step.
    ///
    /// # Errors
    ///
    /// Same as [`CellNetlist::solve`].
    pub fn solve_sequence(
        &self,
        sequence: &[Vec<Lv>],
        forcing: &Forcing,
    ) -> Result<Vec<NodeValues>, SwitchError> {
        let mut state = NodeValues {
            values: vec![Lv::U; self.num_nets()],
        };
        let mut out = Vec::with_capacity(sequence.len());
        for inputs in sequence {
            state = self.solve_with_state(inputs, forcing, &state)?;
            out.push(state.clone());
        }
        Ok(out)
    }

    /// Extracts the logic-level truth table of the cell by exhaustive
    /// switch-level evaluation. Entries may be [`Lv::U`] for defective
    /// cells whose output floats or fights (the gate-level simulator
    /// interprets a floating output as charge retention).
    ///
    /// # Errors
    ///
    /// Same as [`CellNetlist::solve`].
    pub fn truth_table(&self) -> Result<TruthTable, SwitchError> {
        self.truth_table_with(&Forcing::none())
    }

    /// Truth table under a set of [`Forcing`] constraints — the defect
    /// characterization step ("by using a spice simulator, the faulty gate
    /// is simulated in order to determine its truth table", §4).
    ///
    /// # Errors
    ///
    /// Same as [`CellNetlist::solve`].
    pub fn truth_table_with(&self, forcing: &Forcing) -> Result<TruthTable, SwitchError> {
        let n = self.num_inputs();
        let mut entries = Vec::with_capacity(1 << n);
        let mut bits = vec![false; n];
        for combo in 0..(1usize << n) {
            for (k, b) in bits.iter_mut().enumerate() {
                *b = (combo >> k) & 1 == 1;
            }
            let vals = self.solve_bits(&bits, forcing)?;
            entries.push(vals.value(self.output));
        }
        Ok(TruthTable::from_entries(n, entries).expect("entry count is 2^n by construction"))
    }

    /// Two-pattern evaluation with slow (resistive-defect) elements.
    ///
    /// `capture_late` is the capture-time snapshot in which every listed
    /// slow net that transitions between launch and capture is still at its
    /// launch value, and every listed slow transistor whose gate control
    /// changed still sees its launch-time gate value. This models the
    /// paper's delay faulty behaviours (defects D3/D4 of Fig. 1) without a
    /// timing engine: the tester samples before the slow element settles.
    ///
    /// # Errors
    ///
    /// Same as [`CellNetlist::solve`].
    pub fn solve_two_pattern(
        &self,
        launch: &[Lv],
        capture: &[Lv],
        forcing: &Forcing,
        slow_nets: &[TNetId],
        slow_transistors: &[TransistorId],
    ) -> Result<TwoPatternOutcome, SwitchError> {
        let launch_vals = self.solve(launch, forcing)?;
        let capture_settled = self.solve(capture, forcing)?;
        let mut late_forcing = forcing.clone();
        for &net in slow_nets {
            let old = launch_vals.value(net);
            let new = capture_settled.value(net);
            if old.conflicts_with(new) {
                late_forcing = late_forcing.pin(net, old);
            }
        }
        for &tr in slow_transistors {
            let gate = self.transistor(tr).gate;
            let old = launch_vals.value(gate);
            let new = capture_settled.value(gate);
            if old.conflicts_with(new) {
                late_forcing = late_forcing.override_gate(tr, old);
            }
        }
        let capture_late = if late_forcing == *forcing {
            capture_settled.clone()
        } else {
            self.solve(capture, &late_forcing)?
        };
        Ok(TwoPatternOutcome {
            launch: launch_vals,
            capture_settled,
            capture_late,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::CellNetlistBuilder;

    fn inverter() -> CellNetlist {
        let mut b = CellNetlistBuilder::new("INV");
        let a = b.input("A");
        let z = b.output("Z");
        b.pmos("P0", a, b.vdd(), z);
        b.nmos("N0", a, b.gnd(), z);
        b.finish().unwrap()
    }

    /// Standard 4T CMOS NAND2.
    fn nand2() -> CellNetlist {
        let mut b = CellNetlistBuilder::new("NAND2");
        let a = b.input("A");
        let bb = b.input("B");
        let z = b.output("Z");
        let n1 = b.net("n1");
        b.pmos("P0", a, b.vdd(), z);
        b.pmos("P1", bb, b.vdd(), z);
        b.nmos("N0", a, z, n1);
        b.nmos("N1", bb, n1, b.gnd());
        b.finish().unwrap()
    }

    #[test]
    fn inverter_truth_table() {
        let t = inverter().truth_table().unwrap();
        assert_eq!(t.to_string(), "10");
    }

    #[test]
    fn nand2_truth_table() {
        let t = nand2().truth_table().unwrap();
        // index = A + 2B: 00->1, 10->1, 01->1, 11->0.
        assert_eq!(t.to_string(), "1110");
    }

    #[test]
    fn unknown_input_propagates_conservatively() {
        let cell = nand2();
        // A=0 forces Z=1 regardless of B.
        let v = cell.solve(&[Lv::Zero, Lv::U], &Forcing::none()).unwrap();
        assert_eq!(v.value(cell.output()), Lv::One);
        // A=1, B=U leaves Z unknown.
        let v = cell.solve(&[Lv::One, Lv::U], &Forcing::none()).unwrap();
        assert_eq!(v.value(cell.output()), Lv::U);
    }

    #[test]
    fn internal_stack_node_is_conductively_resolved() {
        let cell = nand2();
        let n1 = cell.find_net("n1").unwrap();
        // A=1, B=0: N0 on connects n1 to Z (=1 via P1), N1 off.
        let v = cell.solve_bits(&[true, false], &Forcing::none()).unwrap();
        assert_eq!(v.value(n1), Lv::One);
        // A=0, B=1: N0 off, N1 on connects n1 to GND.
        let v = cell.solve_bits(&[false, true], &Forcing::none()).unwrap();
        assert_eq!(v.value(n1), Lv::Zero);
        // A=0, B=0: n1 floats.
        let v = cell.solve_bits(&[false, false], &Forcing::none()).unwrap();
        assert_eq!(v.value(n1), Lv::U);
    }

    #[test]
    fn pin_overrides_drive() {
        let cell = inverter();
        let z = cell.output();
        let v = cell
            .solve(&[Lv::Zero], &Forcing::none().pin(z, Lv::Zero))
            .unwrap();
        assert_eq!(v.value(z), Lv::Zero);
    }

    #[test]
    fn gate_override_affects_single_transistor() {
        let cell = nand2();
        // A=1, B=1 -> Z=0. Override P0's gate to 0: P0 turns on, creating a
        // fight between VDD (via P0) and GND (via the on N-stack) -> U.
        let p0 = cell.find_transistor("P0").unwrap();
        let v = cell
            .solve_bits(&[true, true], &Forcing::none().override_gate(p0, Lv::Zero))
            .unwrap();
        assert_eq!(v.value(cell.output()), Lv::U);
        // Sanity: without the override Z is 0.
        let v = cell.solve_bits(&[true, true], &Forcing::none()).unwrap();
        assert_eq!(v.value(cell.output()), Lv::Zero);
    }

    #[test]
    fn stuck_off_transistor_floats_output() {
        let cell = inverter();
        let p0 = cell.find_transistor("P0").unwrap();
        // P0 stuck off (gate forced to 1): input 0 leaves Z floating.
        let v = cell
            .solve(&[Lv::Zero], &Forcing::none().override_gate(p0, Lv::One))
            .unwrap();
        assert_eq!(v.value(cell.output()), Lv::U);
    }

    #[test]
    fn dominant_bridge_forces_victim() {
        let cell = nand2();
        let a = cell.find_net("A").unwrap();
        let z = cell.output();
        // Bridge: victim Z, aggressor A. With A=1,B=0 the good Z is 1 but
        // the bridge drags it to... A=1 so no change; with A=0,B=anything
        // good Z=1, bridge forces Z to 0.
        let v = cell
            .solve_bits(&[false, true], &Forcing::none().bridge(z, a))
            .unwrap();
        assert_eq!(v.value(z), Lv::Zero);
        let v = cell
            .solve_bits(&[true, false], &Forcing::none().bridge(z, a))
            .unwrap();
        assert_eq!(v.value(z), Lv::One);
    }

    #[test]
    fn bridge_feedback_damps_to_u_not_error() {
        // Victim A (an input!) dominated by aggressor Z of an inverter:
        // a combinational loop. The solver must damp it to U, not error.
        let cell = inverter();
        let a = cell.find_net("A").unwrap();
        let z = cell.output();
        let v = cell
            .solve(&[Lv::One], &Forcing::none().bridge(a, z))
            .unwrap();
        // Oscillating loop nets end as U.
        assert_eq!(v.value(z), Lv::U);
    }

    #[test]
    fn two_pattern_slow_net_holds_old_value() {
        let cell = inverter();
        let z = cell.output();
        // Launch A=1 (Z=0), capture A=0 (Z=1). If Z itself is slow, the
        // late snapshot still shows 0.
        let out = cell
            .solve_two_pattern(&[Lv::One], &[Lv::Zero], &Forcing::none(), &[z], &[])
            .unwrap();
        assert_eq!(out.launch.value(z), Lv::Zero);
        assert_eq!(out.capture_settled.value(z), Lv::One);
        assert_eq!(out.capture_late.value(z), Lv::Zero);
    }

    #[test]
    fn two_pattern_slow_transistor_holds_old_gate() {
        let cell = inverter();
        let z = cell.output();
        let n0 = cell.find_transistor("N0").unwrap();
        // Launch A=0 (Z=1), capture A=1 (Z=0). N0 slow: still sees gate 0
        // at capture; P0 has already turned off -> Z floats (U) late.
        let out = cell
            .solve_two_pattern(&[Lv::Zero], &[Lv::One], &Forcing::none(), &[], &[n0])
            .unwrap();
        assert_eq!(out.capture_settled.value(z), Lv::Zero);
        assert_eq!(out.capture_late.value(z), Lv::U);
    }

    #[test]
    fn no_transition_means_no_late_difference() {
        let cell = inverter();
        let z = cell.output();
        let out = cell
            .solve_two_pattern(&[Lv::One], &[Lv::One], &Forcing::none(), &[z], &[])
            .unwrap();
        assert_eq!(out.capture_late, out.capture_settled);
    }

    #[test]
    fn wrong_arity_reported() {
        let cell = nand2();
        assert!(matches!(
            cell.solve(&[Lv::One], &Forcing::none()),
            Err(SwitchError::WrongArity {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn conflicting_nets_detects_flips() {
        let cell = inverter();
        let v0 = cell.solve(&[Lv::Zero], &Forcing::none()).unwrap();
        let v1 = cell.solve(&[Lv::One], &Forcing::none()).unwrap();
        let flips = v0.conflicting_nets(&v1);
        // A and Z both flip.
        assert_eq!(flips.len(), 2);
    }
}
