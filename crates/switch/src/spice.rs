//! SPICE subcircuit export.
//!
//! The paper's methodology characterizes faulty cells with a SPICE
//! simulator; this module writes any [`CellNetlist`] as a `.subckt` so the
//! reconstructed cells (and injected shorts/opens) can be cross-checked in
//! an external analog simulator. Device sizes use representative 90 nm
//! defaults; defects are emitted as explicit resistors.

use std::fmt::Write as _;

use crate::{CellNetlist, TransistorKind};

/// Options for [`to_spice`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpiceOptions {
    /// nMOS model name.
    pub nmos_model: String,
    /// pMOS model name.
    pub pmos_model: String,
    /// Drawn channel length in meters.
    pub length: f64,
    /// nMOS width in meters (pMOS gets twice this).
    pub nmos_width: f64,
    /// Resistive defects to emit, as (name, net a, net b, ohms). A
    /// resistive open is modelled by the caller as a series resistor on a
    /// dedicated net; shorts connect two existing nets.
    pub resistors: Vec<(String, String, String, f64)>,
}

impl Default for SpiceOptions {
    fn default() -> Self {
        SpiceOptions {
            nmos_model: "nch".to_owned(),
            pmos_model: "pch".to_owned(),
            length: 0.1e-6,
            nmos_width: 0.3e-6,
            resistors: Vec::new(),
        }
    }
}

/// Renders the cell as a SPICE subcircuit.
///
/// The port order is `VDD GND <inputs…> <output>`, matching the cell's
/// declared pin order.
pub fn to_spice(cell: &CellNetlist, options: &SpiceOptions) -> String {
    let mut out = String::new();
    let _ = write!(out, ".subckt {} VDD GND", cell.name());
    for &input in cell.inputs() {
        let _ = write!(out, " {}", cell.net_name(input));
    }
    let _ = writeln!(out, " {}", cell.net_name(cell.output()));

    for (i, (_, t)) in cell.transistors().enumerate() {
        let (model, width) = match t.kind {
            TransistorKind::Nmos => (&options.nmos_model, options.nmos_width),
            TransistorKind::Pmos => (&options.pmos_model, options.nmos_width * 2.0),
        };
        let bulk = match t.kind {
            TransistorKind::Nmos => "GND",
            TransistorKind::Pmos => "VDD",
        };
        // SPICE MOS pin order: drain gate source bulk.
        let _ = writeln!(
            out,
            "M{i}_{name} {d} {g} {s} {bulk} {model} W={width:.3e} L={length:.3e}",
            name = t.name,
            d = cell.net_name(t.drain),
            g = cell.net_name(t.gate),
            s = cell.net_name(t.source),
            length = options.length,
        );
    }
    for (name, a, b, ohms) in &options.resistors {
        let _ = writeln!(out, "R{name} {a} {b} {ohms:.3e}");
    }
    let _ = writeln!(out, ".ends {}", cell.name());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellNetlistBuilder;

    fn inverter() -> CellNetlist {
        let mut b = CellNetlistBuilder::new("INV");
        let a = b.input("A");
        let z = b.output("Z");
        b.pmos("P0", a, b.vdd(), z);
        b.nmos("N0", a, b.gnd(), z);
        b.finish().unwrap()
    }

    #[test]
    fn inverter_subckt_shape() {
        let s = to_spice(&inverter(), &SpiceOptions::default());
        assert!(s.starts_with(".subckt INV VDD GND A Z\n"), "{s}");
        assert!(s.contains("M0_P0 Z A VDD VDD pch"), "{s}");
        assert!(s.contains("M1_N0 Z A GND GND nch"), "{s}");
        assert!(s.trim_end().ends_with(".ends INV"), "{s}");
        // One line per device plus header/footer.
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn defect_resistors_are_emitted() {
        let mut opts = SpiceOptions::default();
        opts.resistors
            .push(("SHORT1".into(), "Z".into(), "GND".into(), 50.0));
        let s = to_spice(&inverter(), &opts);
        assert!(s.contains("RSHORT1 Z GND 5.000e1"), "{s}");
    }

    #[test]
    fn pmos_is_twice_as_wide() {
        let s = to_spice(&inverter(), &SpiceOptions::default());
        assert!(s.contains("pch W=6.000e-7"), "{s}");
        assert!(s.contains("nch W=3.000e-7"), "{s}");
    }
}
