//! Sample cell generation: random complementary series-parallel CMOS
//! cells, used by property tests and benchmarks across the workspace.
//!
//! A random boolean expression tree over the inputs is implemented as the
//! pull-down network (series for AND, parallel for OR) with the dual
//! pull-up network, i.e. the cell computes the complement of the tree —
//! the construction every static CMOS complex gate follows. By
//! construction the cell is fully complementary, so its truth table must
//! be fully specified; the test suites assert exactly that.

use crate::{CellNetlist, CellNetlistBuilder, SwitchError, TNetId};

/// A boolean expression tree over cell inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An input leaf (index into the cell's inputs).
    Input(usize),
    /// Conjunction of sub-expressions.
    And(Vec<Expr>),
    /// Disjunction of sub-expressions.
    Or(Vec<Expr>),
}

impl Expr {
    /// Evaluates the tree over concrete input bits.
    pub fn eval(&self, bits: &[bool]) -> bool {
        match self {
            Expr::Input(i) => bits[*i],
            Expr::And(children) => children.iter().all(|c| c.eval(bits)),
            Expr::Or(children) => children.iter().any(|c| c.eval(bits)),
        }
    }

    /// Number of leaves (= transistors per network).
    pub fn leaves(&self) -> usize {
        match self {
            Expr::Input(_) => 1,
            Expr::And(children) | Expr::Or(children) => children.iter().map(Expr::leaves).sum(),
        }
    }
}

/// A tiny deterministic PRNG (xorshift64*), so the crate needs no `rand`
/// dependency for sample generation.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e3779b97f4a7c15);
        self.0 = x;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_expr(rng: &mut Prng, inputs: usize, depth: usize, budget: &mut usize) -> Expr {
    if depth == 0 || *budget == 0 || rng.below(3) == 0 {
        return Expr::Input(rng.below(inputs));
    }
    let arity = 2 + rng.below(2);
    let children: Vec<Expr> = (0..arity)
        .map(|_| {
            *budget = budget.saturating_sub(1);
            random_expr(rng, inputs, depth - 1, budget)
        })
        .collect();
    if rng.below(2) == 0 {
        Expr::And(children)
    } else {
        Expr::Or(children)
    }
}

/// Generates a seeded random expression tree over `inputs` inputs.
pub fn random_expr_tree(seed: u64, inputs: usize) -> Expr {
    let mut rng = Prng(seed);
    let mut budget = 10;
    random_expr(&mut rng, inputs.max(1), 3, &mut budget)
}

struct NetAlloc {
    count: usize,
}

impl NetAlloc {
    fn fresh(&mut self, b: &mut CellNetlistBuilder, prefix: &str) -> TNetId {
        self.count += 1;
        b.net(&format!("{prefix}{}", self.count))
    }
}

/// Builds the nMOS network for `expr` between `top` and `bottom`
/// (series for AND, parallel for OR).
#[allow(clippy::too_many_arguments)]
fn build_network(
    b: &mut CellNetlistBuilder,
    alloc: &mut NetAlloc,
    expr: &Expr,
    inputs: &[TNetId],
    top: TNetId,
    bottom: TNetId,
    nmos: bool,
    counter: &mut usize,
) {
    match expr {
        Expr::Input(i) => {
            *counter += 1;
            let name = format!("{}{}", if nmos { "N" } else { "P" }, *counter);
            if nmos {
                b.nmos(&name, inputs[*i], top, bottom);
            } else {
                b.pmos(&name, inputs[*i], top, bottom);
            }
        }
        Expr::And(children) => {
            // Series chain.
            let mut current = top;
            for (k, child) in children.iter().enumerate() {
                let next = if k + 1 == children.len() {
                    bottom
                } else {
                    alloc.fresh(b, if nmos { "sn" } else { "sp" })
                };
                build_network(b, alloc, child, inputs, current, next, nmos, counter);
                current = next;
            }
        }
        Expr::Or(children) => {
            // Parallel branches.
            for child in children {
                build_network(b, alloc, child, inputs, top, bottom, nmos, counter);
            }
        }
    }
}

fn dual(expr: &Expr) -> Expr {
    match expr {
        Expr::Input(i) => Expr::Input(*i),
        Expr::And(children) => Expr::Or(children.iter().map(dual).collect()),
        Expr::Or(children) => Expr::And(children.iter().map(dual).collect()),
    }
}

/// Builds the complementary static CMOS cell computing `!expr` over
/// `inputs` inputs.
///
/// # Errors
///
/// Returns an error only for structurally impossible expressions (never
/// for trees produced by [`random_expr_tree`]).
pub fn cell_from_expr(name: &str, inputs: usize, expr: &Expr) -> Result<CellNetlist, SwitchError> {
    let mut b = CellNetlistBuilder::new(name);
    let input_nets: Vec<TNetId> = (0..inputs).map(|i| b.input(&format!("I{i}"))).collect();
    let z = b.output("Z");
    let mut alloc = NetAlloc { count: 0 };
    let mut counter = 0usize;
    // Pull-down implements expr (conducts => Z low).
    let (vdd, gnd) = (b.vdd(), b.gnd());
    build_network(
        &mut b,
        &mut alloc,
        expr,
        &input_nets,
        z,
        gnd,
        true,
        &mut counter,
    );
    // Pull-up implements the dual (conducts <=> expr is false => Z high).
    let up = dual(expr);
    build_network(
        &mut b,
        &mut alloc,
        &up,
        &input_nets,
        vdd,
        z,
        false,
        &mut counter,
    );
    b.finish()
}

/// Generates a seeded random complementary CMOS cell with `inputs`
/// inputs; the returned expression is the *pull-down* function, so the
/// cell computes its complement.
///
/// ```
/// use icd_switch::samples::random_cell;
/// let (cell, expr) = random_cell(42, 3)?;
/// let table = cell.truth_table()?;
/// // Complementary by construction: fully specified table.
/// assert!(table.entries().iter().all(|v| v.is_known()));
/// # let _ = expr;
/// # Ok::<(), icd_switch::SwitchError>(())
/// ```
pub fn random_cell(seed: u64, inputs: usize) -> Result<(CellNetlist, Expr), SwitchError> {
    let expr = random_expr_tree(seed, inputs);
    let cell = cell_from_expr(&format!("RAND{seed}"), inputs, &expr)?;
    Ok((cell, expr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_logic::Lv;

    #[test]
    fn random_cells_are_complementary_and_correct() {
        for seed in 0..50u64 {
            let inputs = 2 + (seed as usize % 3);
            let (cell, expr) = random_cell(seed, inputs).expect("builds");
            let table = cell.truth_table().expect("evaluates");
            for combo in 0..(1usize << inputs) {
                let bits: Vec<bool> = (0..inputs).map(|k| (combo >> k) & 1 == 1).collect();
                let want = Lv::from(!expr.eval(&bits));
                assert_eq!(
                    table.eval_bits(&bits),
                    want,
                    "seed {seed} combo {bits:?} (expr {expr:?})"
                );
            }
        }
    }

    #[test]
    fn transistor_count_is_twice_the_leaves() {
        let (cell, expr) = random_cell(7, 3).expect("builds");
        assert_eq!(cell.num_transistors(), 2 * expr.leaves());
    }

    #[test]
    fn expression_trees_are_deterministic() {
        assert_eq!(random_expr_tree(9, 4), random_expr_tree(9, 4));
    }
}
