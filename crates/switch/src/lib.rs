//! Transistor-level cell netlists and a switch-level simulator.
//!
//! The paper's intra-cell diagnosis runs a "fault-free simulation … using a
//! switch-level simulation. In the switch-level simulation, the transistors
//! (i.e., nMOS and pMOS) behave as on-off switches" (§3.2.2, after
//! COSMOS \[3\]). This crate provides that engine:
//!
//! * [`CellNetlist`] / [`CellNetlistBuilder`] — a single-output CMOS cell
//!   described as a network of nMOS/pMOS switches over named nets
//!   (`Net118`, `T5` … exactly the vocabulary of the paper's Figs. 1, 6–8).
//! * [`solve`](CellNetlist::solve) — ternary steady-state evaluation.
//!   A net takes a known value only when *every* possibly conducting path
//!   from it reaches fixed nodes (rails / inputs / pinned nets) of that one
//!   value; floating or fighting nets evaluate to [`Lv::U`].
//! * [`Forcing`] — the hook used by both critical path tracing (pin a net
//!   to its complement, override one transistor's effective gate value) and
//!   switch-level defect emulation (stuck-on/off transistors, rail shorts,
//!   dominant bridges).
//! * [`CellNetlist::truth_table`] / [`CellNetlist::solve_two_pattern`] —
//!   extraction of the logic view and two-pattern (delay) behaviour.
//!
//! # Example
//!
//! ```
//! use icd_logic::Lv;
//! use icd_switch::{CellNetlistBuilder, Forcing};
//!
//! // A CMOS inverter: one pMOS, one nMOS.
//! let mut b = CellNetlistBuilder::new("INV");
//! let a = b.input("A");
//! let z = b.output("Z");
//! b.pmos("P0", a, b.vdd(), z);
//! b.nmos("N0", a, b.gnd(), z);
//! let inv = b.finish()?;
//!
//! let vals = inv.solve(&[Lv::Zero], &Forcing::none())?;
//! assert_eq!(vals.value(inv.output()), Lv::One);
//! # Ok::<(), icd_switch::SwitchError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]
#![warn(missing_docs)]

mod cache;
mod netlist;
pub mod samples;
mod sim;
pub mod spice;

pub use cache::TruthTableCache;
pub use netlist::{
    CellNetlist, CellNetlistBuilder, SwitchError, TNetId, Terminal, Transistor, TransistorId,
    TransistorKind,
};
pub use sim::{Forcing, NodeValues};

// Re-exported for doc examples.
pub use icd_logic::Lv;
