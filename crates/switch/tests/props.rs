//! Property-based tests for the switch-level simulator, driven by random
//! complementary series-parallel CMOS cells.

use icd_switch::samples::random_cell;
use icd_switch::{Forcing, Lv};
use proptest::prelude::*;

fn bits(combo: usize, n: usize) -> Vec<bool> {
    (0..n).map(|k| (combo >> k) & 1 == 1).collect()
}

proptest! {
    /// Complementary cells never float or fight: the derived table is
    /// fully specified and equals the complement of the pull-down
    /// expression.
    #[test]
    fn random_cells_evaluate_their_expression(seed in any::<u64>(), inputs in 1usize..5) {
        let (cell, expr) = random_cell(seed, inputs).expect("builds");
        let table = cell.truth_table().expect("evaluates");
        for combo in 0..(1usize << inputs) {
            let b = bits(combo, inputs);
            prop_assert_eq!(table.eval_bits(&b), Lv::from(!expr.eval(&b)));
        }
    }

    /// The solver is a pure function of its inputs.
    #[test]
    fn solve_is_deterministic(seed in any::<u64>(), combo in any::<usize>()) {
        let (cell, _) = random_cell(seed, 3).expect("builds");
        let b = bits(combo % 8, 3);
        let v1 = cell.solve_bits(&b, &Forcing::none()).expect("solves");
        let v2 = cell.solve_bits(&b, &Forcing::none()).expect("solves");
        prop_assert_eq!(v1, v2);
    }

    /// Pinning a net to the value it already settled at changes nothing:
    /// the steady state is a fixed point.
    #[test]
    fn pinning_settled_value_is_identity(seed in any::<u64>(), combo in any::<usize>()) {
        let (cell, _) = random_cell(seed, 3).expect("builds");
        let b = bits(combo % 8, 3);
        let base = cell.solve_bits(&b, &Forcing::none()).expect("solves");
        for net in cell.nets() {
            let v = base.value(net);
            if !v.is_known() {
                continue;
            }
            let pinned = cell
                .solve_bits(&b, &Forcing::none().pin(net, v))
                .expect("solves");
            prop_assert_eq!(
                pinned.value(cell.output()),
                base.value(cell.output()),
                "pinning {} to its value {} moved the output",
                cell.net_name(net),
                v
            );
        }
    }

    /// Overriding a transistor's gate with its current effective value is
    /// a no-op.
    #[test]
    fn redundant_gate_override_is_identity(seed in any::<u64>(), combo in any::<usize>()) {
        let (cell, _) = random_cell(seed, 3).expect("builds");
        let b = bits(combo % 8, 3);
        let base = cell.solve_bits(&b, &Forcing::none()).expect("solves");
        for (tid, t) in cell.transistors() {
            let g = base.value(t.gate);
            let forced = cell
                .solve_bits(&b, &Forcing::none().override_gate(tid, g))
                .expect("solves");
            prop_assert_eq!(forced, base.clone());
        }
    }

    /// With no slow elements the late capture snapshot equals the settled
    /// one.
    #[test]
    fn two_pattern_without_slow_elements_is_static(
        seed in any::<u64>(),
        launch in any::<usize>(),
        capture in any::<usize>(),
    ) {
        let (cell, _) = random_cell(seed, 3).expect("builds");
        let l: Vec<Lv> = bits(launch % 8, 3).into_iter().map(Lv::from).collect();
        let c: Vec<Lv> = bits(capture % 8, 3).into_iter().map(Lv::from).collect();
        let out = cell
            .solve_two_pattern(&l, &c, &Forcing::none(), &[], &[])
            .expect("solves");
        prop_assert_eq!(out.capture_late, out.capture_settled);
    }

    /// A slow net that does not transition leaves the late snapshot
    /// untouched.
    #[test]
    fn stable_slow_net_changes_nothing(seed in any::<u64>(), combo in any::<usize>()) {
        let (cell, _) = random_cell(seed, 3).expect("builds");
        let v: Vec<Lv> = bits(combo % 8, 3).into_iter().map(Lv::from).collect();
        for net in cell.nets() {
            let out = cell
                .solve_two_pattern(&v, &v, &Forcing::none(), &[net], &[])
                .expect("solves");
            prop_assert_eq!(out.capture_late, out.capture_settled);
        }
    }
}
