//! Differential tests for the event-driven simulation paths: every
//! cone-restricted kernel (`run_test`, `run_test_gate_fault`,
//! `run_test_multi`, `detects`, `first_detections`, `DiffPropagator`)
//! against a full-topology walk of the faulty machine, over randomly
//! generated circuits, corrupted (`U`-bearing) cell tables, delay
//! behaviours and pattern counts that do not fill a whole 64-lane word.

#![allow(clippy::unwrap_used, clippy::panic)] // test code

use icd_cells::CellLibrary;
use icd_faultsim::{
    detects, detects_any, first_detections, good_simulate, run_test, run_test_gate_fault,
    run_test_multi, run_test_multi_full, ternary_simulate, DelayTable, DiffPropagator,
    FaultyBehavior, FaultyGate, GateFault,
};
use icd_logic::{Lv, Pattern, TruthTable};
use icd_netlist::{generator, Circuit, NetId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_circuit(seed: u64, gates: usize) -> Circuit {
    let cells = CellLibrary::standard();
    let logic = cells.logic_library();
    let cfg = generator::GeneratorConfig {
        name: format!("event_diff{seed}"),
        gates,
        primary_inputs: 6,
        primary_outputs: 6,
        flip_flops: 2,
        scan_chains: 1,
        seed,
    };
    generator::generate(&cfg, &logic).expect("generates")
}

fn random_patterns(circuit: &Circuit, count: usize, seed: u64) -> Vec<Pattern> {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = circuit.inputs().len();
    (0..count)
        .map(|_| Pattern::from_bits((0..w).map(|_| rng.random_bool(0.5))))
        .collect()
}

/// A corrupted copy of `good`: each entry is independently flipped or
/// degraded to `U` — the shape of a characterized defective cell.
fn corrupt_table(good: &TruthTable, seed: u64) -> TruthTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let entries: Vec<Lv> = good
        .entries()
        .iter()
        .map(|&v| {
            if rng.random_bool(0.3) {
                Lv::U
            } else if rng.random_bool(0.5) {
                !v
            } else {
                v
            }
        })
        .collect();
    TruthTable::from_entries(good.inputs(), entries).unwrap()
}

/// Full-topology scalar oracle for a net-level fault: simulates the whole
/// faulty machine per pattern and returns the failing output positions.
fn full_walk_gate_fault(
    circuit: &Circuit,
    patterns: &[Pattern],
    fault: &GateFault,
) -> Vec<Vec<usize>> {
    let good = good_simulate(circuit, patterns).unwrap();
    let site = fault.site();
    let mut per_pattern = Vec::with_capacity(patterns.len());
    for (t, pattern) in patterns.iter().enumerate() {
        let faulty_site = match *fault {
            GateFault::StuckAt { value, .. } => value,
            GateFault::SlowToRise { net } => {
                let prev = good.value(net, t.saturating_sub(1));
                let cur = good.value(net, t);
                if !prev && cur {
                    false
                } else {
                    cur
                }
            }
            GateFault::SlowToFall { net } => {
                let prev = good.value(net, t.saturating_sub(1));
                let cur = good.value(net, t);
                if prev && !cur {
                    true
                } else {
                    cur
                }
            }
            GateFault::Bridging { aggressor, .. } => good.value(aggressor, t),
        };
        let mut values = vec![Lv::U; circuit.num_nets()];
        for (i, &net) in circuit.inputs().iter().enumerate() {
            values[net.index()] = pattern[i];
        }
        // The fault dominates its net: re-force after every driver write.
        values[site.index()] = Lv::from(faulty_site);
        for &gate in circuit.topo_order() {
            let ins: Vec<Lv> = circuit
                .gate_inputs(gate)
                .iter()
                .map(|&n| values[n.index()])
                .collect();
            let out = circuit.gate_output(gate);
            values[out.index()] = circuit.gate_type(gate).table().eval(&ins).unwrap();
            if out == site {
                values[out.index()] = Lv::from(faulty_site);
            }
        }
        let failing: Vec<usize> = circuit
            .outputs()
            .iter()
            .enumerate()
            .filter(|&(_, &net)| values[net.index()] != Lv::from(good.value(net, t)))
            .map(|(i, _)| i)
            .collect();
        per_pattern.push(failing);
    }
    per_pattern
}

fn pick_fault(circuit: &Circuit, kind: usize, pick: usize, pick2: usize) -> GateFault {
    let nets: Vec<NetId> = circuit.nets().collect();
    let net = nets[pick % nets.len()];
    match kind % 4 {
        0 => GateFault::StuckAt {
            net,
            value: pick2 % 2 == 1,
        },
        1 => GateFault::SlowToRise { net },
        2 => GateFault::SlowToFall { net },
        _ => {
            let aggressor = nets[pick2 % nets.len()];
            GateFault::Bridging {
                victim: net,
                aggressor,
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The event-driven single-faulty-cell tester (`run_test`) produces
    /// the same datalog as the retained full-topology faulty machine —
    /// including `U` table entries, which exercise the charge-retention
    /// chain and the scalar ternary fallback lanes.
    #[test]
    fn event_run_test_matches_full_walk(
        seed in any::<u64>(),
        gate_pick in any::<usize>(),
        pats in 1usize..90,
    ) {
        let circuit = random_circuit(seed, 40);
        let patterns = random_patterns(&circuit, pats, seed ^ 0x5a);
        let order = circuit.topo_order();
        let gate = order[gate_pick % order.len()];
        let table = corrupt_table(circuit.gate_type(gate).table(), seed ^ 0xc3);
        let faulty = FaultyGate::new(gate, FaultyBehavior::Static(table));
        let event = run_test(&circuit, &patterns, &faulty).expect("run_test");
        let full = run_test_multi_full(&circuit, &patterns, std::slice::from_ref(&faulty))
            .expect("full walk");
        prop_assert_eq!(event, full);
    }

    /// Delay behaviours (previous-pattern dependence, raw `U` outputs that
    /// bypass retention) through the event path vs the full walk.
    #[test]
    fn event_run_test_matches_full_walk_for_delay_behaviors(
        seed in any::<u64>(),
        gate_pick in any::<usize>(),
        pats in 1usize..90,
    ) {
        let circuit = random_circuit(seed, 40);
        let patterns = random_patterns(&circuit, pats, seed ^ 0x77);
        let order = circuit.topo_order();
        let gate = order[gate_pick % order.len()];
        let good_table = circuit.gate_type(gate).table().clone();
        let n = good_table.inputs();
        // Deterministic late cell: stable vectors read the table, a
        // transition either floats (odd parity) or holds the stale value.
        let table = DelayTable::from_fn(n, move |prev, cur| {
            if prev == cur {
                good_table.eval_bits(cur)
            } else if cur.iter().filter(|&&b| b).count() % 2 == 1 {
                Lv::U
            } else {
                good_table.eval_bits(prev)
            }
        });
        let faulty = FaultyGate::new(gate, FaultyBehavior::Delay(table));
        let event = run_test(&circuit, &patterns, &faulty).expect("run_test");
        let full = run_test_multi_full(&circuit, &patterns, std::slice::from_ref(&faulty))
            .expect("full walk");
        prop_assert_eq!(event, full);
    }

    /// The word-parallel net-fault tester and the fault-detection kernels
    /// against the full-topology scalar oracle.
    #[test]
    fn event_net_fault_paths_match_full_walk(
        seed in any::<u64>(),
        kind in any::<usize>(),
        pick in any::<usize>(),
        pick2 in any::<usize>(),
        pats in 1usize..90,
    ) {
        let circuit = random_circuit(seed, 40);
        let patterns = random_patterns(&circuit, pats, seed ^ 0x33);
        let fault = pick_fault(&circuit, kind, pick, pick2);
        let oracle = full_walk_gate_fault(&circuit, &patterns, &fault);

        let log = run_test_gate_fault(&circuit, &patterns, &fault).expect("run_test_gate_fault");
        let expected: Vec<(usize, Vec<usize>)> = oracle
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_empty())
            .map(|(t, f)| (t, f.clone()))
            .collect();
        let got: Vec<(usize, Vec<usize>)> = log
            .entries
            .iter()
            .map(|e| (e.pattern_index, e.failing_outputs.clone()))
            .collect();
        prop_assert_eq!(got, expected);

        let good = good_simulate(&circuit, &patterns).unwrap();
        let det = detects(&circuit, &good, &fault);
        let want_det: Vec<bool> = oracle.iter().map(|f| !f.is_empty()).collect();
        prop_assert_eq!(&det, &want_det);
        prop_assert_eq!(detects_any(&circuit, &good, &fault), want_det.iter().any(|&d| d));

        // Fault dropping returns exactly the first detection.
        let firsts = first_detections(&circuit, &good, std::slice::from_ref(&fault));
        prop_assert_eq!(firsts[0], want_det.iter().position(|&d| d));
    }

    /// The event-driven multi-defect tester vs its full-topology oracle,
    /// with interacting defects (one faulty cell may sit in another's
    /// cone).
    #[test]
    fn event_run_test_multi_matches_full_walk(
        seed in any::<u64>(),
        p0 in any::<usize>(),
        p1 in any::<usize>(),
        p2 in any::<usize>(),
        pats in 1usize..90,
    ) {
        let circuit = random_circuit(seed, 40);
        let patterns = random_patterns(&circuit, pats, seed ^ 0x44);
        let order = circuit.topo_order();
        let mut gates: Vec<_> = [p0, p1, p2].iter().map(|p| order[p % order.len()]).collect();
        gates.sort();
        gates.dedup();
        let faulty: Vec<FaultyGate> = gates
            .iter()
            .enumerate()
            .map(|(k, &g)| {
                let table = corrupt_table(circuit.gate_type(g).table(), seed ^ (k as u64));
                FaultyGate::new(g, FaultyBehavior::Static(table))
            })
            .collect();
        let event = run_test_multi(&circuit, &patterns, &faulty).expect("event multi");
        let full = run_test_multi_full(&circuit, &patterns, &faulty).expect("full multi");
        prop_assert_eq!(event, full);
    }

    /// `DiffPropagator` (the scalar ternary event path) against a full
    /// ternary resimulation with the forced net overridden, under
    /// partially specified (`U`-bearing) patterns.
    #[test]
    fn diff_propagator_matches_full_ternary_resim(
        seed in any::<u64>(),
        pick in any::<usize>(),
        value in 0usize..3,
    ) {
        let circuit = random_circuit(seed, 40);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x99);
        let w = circuit.inputs().len();
        let pattern = Pattern::new((0..w).map(|_| match rng.random_range(0..3) {
            0 => Lv::Zero,
            1 => Lv::One,
            _ => Lv::U,
        }));
        let base = ternary_simulate(&circuit, &pattern).unwrap();
        let nets: Vec<NetId> = circuit.nets().collect();
        let net = nets[pick % nets.len()];
        let forced = Lv::ALL[value];

        let mut prop = DiffPropagator::new(&circuit);
        let changed = prop.propagate(&circuit, &base, &[(net, forced)]);

        // Oracle: full topo walk with the forced net dominated.
        let mut values = base.clone();
        values[net.index()] = forced;
        for &gate in circuit.topo_order() {
            let ins: Vec<Lv> = circuit
                .gate_inputs(gate)
                .iter()
                .map(|&n| values[n.index()])
                .collect();
            let out = circuit.gate_output(gate);
            values[out.index()] = circuit.gate_type(gate).table().eval(&ins).unwrap();
            if out == net {
                values[out.index()] = forced;
            }
        }
        let expected: Vec<(usize, Lv)> = circuit
            .outputs()
            .iter()
            .enumerate()
            .filter(|&(_, &n)| values[n.index()] != base[n.index()])
            .map(|(i, &n)| (i, values[n.index()]))
            .collect();
        prop_assert_eq!(changed, expected);
    }
}

#[test]
fn exact_word_boundary_pattern_counts_agree() {
    // 64 patterns = exactly one full word; 70 = a 6-lane tail word.
    for pats in [1usize, 63, 64, 65, 70] {
        let circuit = random_circuit(7, 60);
        let patterns = random_patterns(&circuit, pats, 0xbeef);
        let order = circuit.topo_order();
        let gate = order[order.len() / 2];
        let table = corrupt_table(circuit.gate_type(gate).table(), 0xf00d);
        let faulty = FaultyGate::new(gate, FaultyBehavior::Static(table));
        let event = run_test(&circuit, &patterns, &faulty).unwrap();
        let full = run_test_multi_full(&circuit, &patterns, std::slice::from_ref(&faulty)).unwrap();
        assert_eq!(event, full, "pattern count {pats}");
    }
}

#[test]
fn empty_pattern_set_is_handled_by_every_path() {
    let circuit = random_circuit(11, 40);
    let order = circuit.topo_order();
    let gate = order[0];
    let table = corrupt_table(circuit.gate_type(gate).table(), 3);
    let faulty = FaultyGate::new(gate, FaultyBehavior::Static(table));
    let log = run_test(&circuit, &[], &faulty).unwrap();
    assert_eq!(log.num_patterns, 0);
    assert!(log.all_pass());

    let good = good_simulate(&circuit, &[]).unwrap();
    let out = circuit.gate_output(gate);
    let fault = GateFault::stuck_at(out, true);
    assert_eq!(detects(&circuit, &good, &fault), Vec::<bool>::new());
    assert!(!detects_any(&circuit, &good, &fault));
    assert_eq!(
        first_detections(&circuit, &good, std::slice::from_ref(&fault)),
        vec![None]
    );
    let log = run_test_gate_fault(&circuit, &[], &fault).unwrap();
    assert!(log.all_pass());
}

#[test]
fn campaign_counters_report_dropped_faults() {
    let circuit = random_circuit(5, 60);
    let patterns = random_patterns(&circuit, 70, 0x1234);
    let good = good_simulate(&circuit, &patterns).unwrap();
    let faults = icd_faultsim::enumerate_stuck_at(&circuit);
    let collector = icd_obs::Collector::new();
    let firsts = {
        let _active = collector.install_local();
        first_detections(&circuit, &good, &faults)
    };
    let detected = firsts.iter().filter(|f| f.is_some()).count() as u64;
    assert!(detected > 0, "some stuck-at fault must be detectable");
    let snap = collector.snapshot();
    assert_eq!(snap.counters["eventsim.faults_dropped"].0, detected);
    assert!(snap.counters["eventsim.gates_evaluated"].0 > 0);
    // Per-fault detection agrees with the full sweep.
    for (fault, first) in faults.iter().zip(&firsts) {
        let det = detects(&circuit, &good, fault);
        assert_eq!(*first, det.iter().position(|&d| d), "fault {fault}");
    }
}
