//! Property-based tests for gate-level simulation: the bit-parallel good
//! machine must agree with the serial ternary simulator, and fault
//! detection must match first-principles predictions.

use icd_cells::CellLibrary;
use icd_faultsim::{
    detects, good_simulate, run_test, ternary_simulate, FaultyBehavior, FaultyGate, GateFault,
};
use icd_logic::{Lv, Pattern};
use icd_netlist::{generator, Circuit};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_circuit(seed: u64, gates: usize) -> Circuit {
    let cells = CellLibrary::standard();
    let logic = cells.logic_library();
    let cfg = generator::GeneratorConfig {
        name: format!("prop{seed}"),
        gates,
        primary_inputs: 6,
        primary_outputs: 6,
        flip_flops: 2,
        scan_chains: 1,
        seed,
    };
    generator::generate(&cfg, &logic).expect("generates")
}

fn random_patterns(circuit: &Circuit, count: usize, seed: u64) -> Vec<Pattern> {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = circuit.inputs().len();
    (0..count)
        .map(|_| Pattern::from_bits((0..w).map(|_| rng.random_bool(0.5))))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bit-parallel and serial ternary simulation agree on every net and
    /// every pattern.
    #[test]
    fn bit_parallel_equals_ternary(seed in any::<u64>(), gates in 8usize..80, pats in 1usize..90) {
        let circuit = random_circuit(seed, gates);
        let patterns = random_patterns(&circuit, pats, seed ^ 1);
        let bits = good_simulate(&circuit, &patterns).expect("simulates");
        for (t, p) in patterns.iter().enumerate() {
            let ternary = ternary_simulate(&circuit, p).expect("simulates");
            for net in circuit.nets() {
                prop_assert_eq!(
                    Lv::from(bits.value(net, t)),
                    ternary[net.index()],
                    "net {} pattern {}",
                    circuit.net_name(net),
                    t
                );
            }
        }
    }

    /// A stuck-at fault on a net that is itself an observe point is
    /// detected exactly on the patterns where the good value differs from
    /// the stuck value.
    #[test]
    fn stuck_at_on_observed_net_detected_iff_excited(seed in any::<u64>(), pats in 1usize..70) {
        let circuit = random_circuit(seed, 30);
        let patterns = random_patterns(&circuit, pats, seed ^ 2);
        let good = good_simulate(&circuit, &patterns).expect("simulates");
        for &out in circuit.outputs().iter().take(3) {
            for value in [false, true] {
                let det = detects(&circuit, &good, &GateFault::stuck_at(out, value));
                for (t, d) in det.iter().enumerate() {
                    prop_assert_eq!(*d, good.value(out, t) != value);
                }
            }
        }
    }

    /// A faulty cell whose behaviour equals the good function never
    /// fails.
    #[test]
    fn healthy_behavior_never_fails(seed in any::<u64>()) {
        let circuit = random_circuit(seed, 40);
        let patterns = random_patterns(&circuit, 16, seed ^ 3);
        let gate = circuit.topo_order()[0];
        let table = circuit.gate_type(gate).table().clone();
        let faulty = FaultyGate::new(gate, FaultyBehavior::Static(table));
        let log = run_test(&circuit, &patterns, &faulty).expect("tests");
        prop_assert!(log.all_pass());
    }

    /// The complemented cell fails on every pattern where its output is
    /// observable; the datalog is a subset of the activation patterns and
    /// detection matches the equivalent stuck-at-style propagation.
    #[test]
    fn inverted_behavior_fails_where_observable(seed in any::<u64>()) {
        let circuit = random_circuit(seed, 40);
        let patterns = random_patterns(&circuit, 16, seed ^ 4);
        let gate = circuit.topo_order()[0];
        let good_table = circuit.gate_type(gate).table().clone();
        let inverted = icd_logic::TruthTable::from_entries(
            good_table.inputs(),
            good_table.entries().iter().map(|&v| !v).collect(),
        )
        .expect("same size");
        let faulty = FaultyGate::new(gate, FaultyBehavior::Static(inverted));
        let log = run_test(&circuit, &patterns, &faulty).expect("tests");
        // Each failing pattern must name at least one failing output.
        for e in &log.entries {
            prop_assert!(!e.failing_outputs.is_empty());
            prop_assert!(e.pattern_index < patterns.len());
        }
        // Failing patterns are strictly increasing.
        for w in log.entries.windows(2) {
            prop_assert!(w[0].pattern_index < w[1].pattern_index);
        }
    }

    /// Transition faults never fire on the first pattern and require a
    /// transition on the faulty net.
    #[test]
    fn transition_faults_respect_sequencing(seed in any::<u64>(), pats in 2usize..40) {
        let circuit = random_circuit(seed, 30);
        let patterns = random_patterns(&circuit, pats, seed ^ 5);
        let good = good_simulate(&circuit, &patterns).expect("simulates");
        let net = circuit.gate_output(circuit.topo_order()[0]);
        for fault in [GateFault::SlowToRise { net }, GateFault::SlowToFall { net }] {
            let det = detects(&circuit, &good, &fault);
            prop_assert!(!det[0], "first pattern cannot excite a transition");
            for (t, d) in det.iter().enumerate().skip(1) {
                if *d {
                    let prev = good.value(net, t - 1);
                    let cur = good.value(net, t);
                    match fault {
                        GateFault::SlowToRise { .. } => prop_assert!(!prev && cur),
                        GateFault::SlowToFall { .. } => prop_assert!(prev && !cur),
                        _ => unreachable!(),
                    }
                }
            }
        }
    }
}
