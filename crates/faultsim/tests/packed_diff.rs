//! Differential tests for the packed simulation paths: the bit-parallel
//! good machine against its serial oracle, and the packed static-fault
//! prefilter in `run_test` against the fully serial faulty machine of
//! `run_test_multi`, over randomly generated circuits and pattern counts
//! that do not fill a whole 64-lane word.

#![allow(clippy::unwrap_used, clippy::panic)] // test code

use icd_cells::CellLibrary;
use icd_faultsim::{
    good_simulate, good_simulate_scalar, run_test, run_test_multi, FaultyBehavior, FaultyGate,
};
use icd_logic::{Lv, Pattern, TruthTable};
use icd_netlist::{generator, Circuit};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_circuit(seed: u64, gates: usize) -> Circuit {
    let cells = CellLibrary::standard();
    let logic = cells.logic_library();
    let cfg = generator::GeneratorConfig {
        name: format!("packed_diff{seed}"),
        gates,
        primary_inputs: 6,
        primary_outputs: 6,
        flip_flops: 2,
        scan_chains: 1,
        seed,
    };
    generator::generate(&cfg, &logic).expect("generates")
}

fn random_patterns(circuit: &Circuit, count: usize, seed: u64) -> Vec<Pattern> {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = circuit.inputs().len();
    (0..count)
        .map(|_| Pattern::from_bits((0..w).map(|_| rng.random_bool(0.5))))
        .collect()
}

/// A corrupted copy of `good`: each entry is independently flipped or
/// degraded to `U` — the shape of a characterized defective cell.
fn corrupt_table(good: &TruthTable, seed: u64) -> TruthTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let entries: Vec<Lv> = good
        .entries()
        .iter()
        .map(|&v| {
            if rng.random_bool(0.3) {
                Lv::U
            } else if rng.random_bool(0.5) {
                !v
            } else {
                v
            }
        })
        .collect();
    TruthTable::from_entries(good.inputs(), entries).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The packed good machine and its per-pattern scalar oracle agree on
    /// every (net, pattern), including tail words.
    #[test]
    fn packed_good_machine_matches_scalar_oracle(
        seed in any::<u64>(),
        gates in 8usize..80,
        pats in 1usize..90,
    ) {
        let circuit = random_circuit(seed, gates);
        let patterns = random_patterns(&circuit, pats, seed ^ 0xa5);
        let packed = good_simulate(&circuit, &patterns).expect("packed simulates");
        let scalar = good_simulate_scalar(&circuit, &patterns).expect("scalar simulates");
        prop_assert_eq!(packed.num_patterns(), scalar.num_patterns());
        prop_assert_eq!(packed.words_per_net(), scalar.words_per_net());
        for net in circuit.nets() {
            for t in 0..patterns.len() {
                prop_assert_eq!(
                    packed.value(net, t),
                    scalar.value(net, t),
                    "net {} pattern {}",
                    circuit.net_name(net),
                    t
                );
            }
            // Raw words also agree under the tail mask.
            for w in 0..packed.words_per_net() {
                let m = packed.tail_mask(w);
                prop_assert_eq!(packed.word(net, w) & m, scalar.word(net, w) & m);
            }
        }
    }

    /// `run_test`'s packed static prefilter produces the same datalog as
    /// the fully serial faulty machine of `run_test_multi` for a single
    /// static fault — including tables with `U` entries, which exercise
    /// the sequential charge-retention chain across word boundaries.
    #[test]
    fn static_prefilter_matches_serial_faulty_machine(
        seed in any::<u64>(),
        gate_pick in any::<usize>(),
        pats in 1usize..90,
    ) {
        let circuit = random_circuit(seed, 40);
        let patterns = random_patterns(&circuit, pats, seed ^ 0x5a);
        let order = circuit.topo_order();
        let gate = order[gate_pick % order.len()];
        let table = corrupt_table(circuit.gate_type(gate).table(), seed ^ 0xc3);
        let faulty = FaultyGate::new(gate, FaultyBehavior::Static(table));
        let packed_log = run_test(&circuit, &patterns, &faulty).expect("run_test");
        let serial_log =
            run_test_multi(&circuit, &patterns, std::slice::from_ref(&faulty)).expect("multi");
        prop_assert_eq!(packed_log, serial_log);
    }
}
