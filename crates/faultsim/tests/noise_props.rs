//! The no-panic guarantee of datalog ingestion, plus the text-format
//! round-trip law, exercised property-style: [`icd_faultsim::datalog_text::parse`]
//! must return `Ok` or a structured error — never panic — on arbitrary
//! bytes, and on well-formed datalogs mangled by every corruption the
//! noise harness models.

#![allow(clippy::unwrap_used, clippy::panic)] // test code

use icd_faultsim::{datalog_text, Corruption, Datalog, DatalogEntry, NoiseModel};
use proptest::prelude::*;

/// An arbitrary *valid* datalog: sorted unique pattern indices, non-empty
/// in-range observe lists.
fn arb_datalog(max_patterns: usize, num_outputs: usize) -> impl Strategy<Value = Datalog> {
    (
        1usize..max_patterns,
        prop::collection::vec(any::<u64>(), 0..=12),
    )
        .prop_map(move |(num_patterns, seeds)| {
            let mut entries: Vec<DatalogEntry> = Vec::new();
            let mut used = std::collections::BTreeSet::new();
            for seed in seeds {
                let pattern_index = (seed as usize) % num_patterns;
                if !used.insert(pattern_index) {
                    continue;
                }
                let n_outputs = 1 + (seed >> 8) as usize % 3;
                let mut failing_outputs: Vec<usize> = Vec::new();
                for k in 0..n_outputs {
                    let o = ((seed >> (16 + 8 * k)) as usize) % num_outputs;
                    if !failing_outputs.contains(&o) {
                        failing_outputs.push(o);
                    }
                }
                entries.push(DatalogEntry {
                    pattern_index,
                    failing_outputs,
                });
            }
            entries.sort_by_key(|e| e.pattern_index);
            Datalog {
                circuit_name: "fuzz".into(),
                num_patterns,
                entries,
            }
        })
}

fn arb_corruption() -> impl Strategy<Value = Corruption> {
    prop_oneof![
        (0usize..20).prop_map(Corruption::TruncateAfter),
        (0u64..=100).prop_map(|p| Corruption::DropEntries {
            rate: p as f64 / 100.0
        }),
        (0u64..=100).prop_map(|p| Corruption::SpuriousFails {
            rate: p as f64 / 100.0
        }),
        (0u64..=100).prop_map(|p| Corruption::FlipOutputs {
            rate: p as f64 / 100.0
        }),
        (0u64..=100).prop_map(|p| Corruption::DuplicateLines {
            rate: p as f64 / 100.0
        }),
        Just(Corruption::ShuffleLines),
        (0u64..=60).prop_map(|p| Corruption::GarbleBytes {
            rate: p as f64 / 100.0
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// parse() never panics on arbitrary byte soup; it returns a value or
    /// a structured error.
    #[test]
    fn parse_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..=300)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = datalog_text::parse(&text);
    }

    /// The serialization law: write() then parse() is the identity on
    /// valid datalogs.
    #[test]
    fn write_parse_round_trip(log in arb_datalog(200, 6)) {
        let text = datalog_text::write(&log);
        let back = datalog_text::parse(&text);
        prop_assert_eq!(back.as_ref(), Ok(&log), "text was:\n{}", text);
    }

    /// parse() never panics on a well-formed datalog mangled by any
    /// corruption sequence — and when it succeeds, sanitize() restores
    /// every Datalog invariant.
    #[test]
    fn corrupted_text_parses_or_errors_never_panics(
        log in arb_datalog(100, 5),
        seed in any::<u64>(),
        corruptions in prop::collection::vec(arb_corruption(), 1..=4),
    ) {
        let model = NoiseModel { seed, corruptions };
        let noisy_log = model.apply(&log, 5);
        let noisy_text = model.apply_text(&datalog_text::write(&noisy_log));
        if let Ok(parsed) = datalog_text::parse(&noisy_text) {
            let (clean, _report) = parsed.sanitize(5);
            // Invariants: sorted unique in-range entries, non-empty
            // in-range observe lists.
            prop_assert!(clean
                .entries
                .windows(2)
                .all(|w| w[0].pattern_index < w[1].pattern_index));
            for e in &clean.entries {
                prop_assert!(e.pattern_index < clean.num_patterns);
                prop_assert!(!e.failing_outputs.is_empty());
                prop_assert!(e.failing_outputs.iter().all(|&o| o < 5));
            }
        }
    }

    /// Structured corruption is deterministic in the seed and sanitize is
    /// idempotent.
    #[test]
    fn corruption_is_seed_deterministic(
        log in arb_datalog(100, 5),
        seed in any::<u64>(),
        corruptions in prop::collection::vec(arb_corruption(), 1..=4),
    ) {
        let model = NoiseModel { seed, corruptions };
        prop_assert_eq!(model.apply(&log, 5), model.apply(&log, 5));
        let (clean, _) = model.apply(&log, 5).sanitize(5);
        let (again, report) = clean.sanitize(5);
        prop_assert_eq!(again, clean);
        prop_assert!(report.is_clean());
    }
}
