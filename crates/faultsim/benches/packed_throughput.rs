//! Packed vs scalar good-machine simulation throughput.
//!
//! The packed path ([`good_simulate`]) evaluates 64 patterns per machine
//! word on the `icd-logic::packed` kernel; the scalar oracle
//! ([`good_simulate_scalar`]) walks the same circuit one ternary pattern
//! at a time. Besides the criterion display, the run writes the
//! machine-readable `BENCH_packed.json` at the workspace root with the
//! measured single-core speedup (the acceptance floor is 5×).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use icd_cells::CellLibrary;
use icd_faultsim::{good_simulate, good_simulate_scalar};
use icd_logic::Pattern;
use icd_netlist::{generator, Circuit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIVISOR: usize = 100;
const PATTERNS: usize = 256;

fn build_input() -> (Circuit, Vec<Pattern>) {
    let lib = CellLibrary::standard().logic_library();
    let config = generator::circuit_b().scaled_down(DIVISOR);
    let circuit = generator::generate(&config, &lib).expect("circuit B builds at bench scale");
    let width = circuit.inputs().len();
    let mut rng = StdRng::seed_from_u64(0x9ac4ed);
    let patterns: Vec<Pattern> = (0..PATTERNS)
        .map(|_| Pattern::from_bits((0..width).map(|_| rng.random::<bool>())))
        .collect();
    (circuit, patterns)
}

/// Median-of-`runs` wall-clock seconds of `f`.
fn time_median<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64().max(1e-9)
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn write_json(circuit: &Circuit, patterns: &[Pattern], scalar_s: f64, packed_s: f64) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let gate_evals = (circuit.num_gates() * patterns.len()) as f64;
    let json = format!(
        "{{\n  \"bench\": \"packed_throughput\",\n  \"circuit\": \"B/{DIVISOR}\",\n  \
         \"gates\": {},\n  \"patterns\": {},\n  \"cores\": {cores},\n  \
         \"scalar_seconds\": {scalar_s:.6},\n  \"packed_seconds\": {packed_s:.6},\n  \
         \"scalar_gate_evals_per_s\": {:.1},\n  \"packed_gate_evals_per_s\": {:.1},\n  \
         \"speedup\": {:.3}\n}}\n",
        circuit.num_gates(),
        patterns.len(),
        gate_evals / scalar_s,
        gate_evals / packed_s,
        scalar_s / packed_s,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_packed.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn bench_packed(c: &mut Criterion) {
    let (circuit, patterns) = build_input();

    // Warm-up + the machine-readable comparison.
    let _ = good_simulate(&circuit, &patterns).expect("packed sim runs");
    let packed_s = time_median(5, || {
        let _ = good_simulate(&circuit, &patterns).expect("packed sim runs");
    });
    let scalar_s = time_median(3, || {
        let _ = good_simulate_scalar(&circuit, &patterns).expect("scalar sim runs");
    });
    write_json(&circuit, &patterns, scalar_s, packed_s);

    // Criterion display: per-path latency over the same input.
    let mut group = c.benchmark_group("good_machine_sim");
    group.sample_size(10);
    group.throughput(Throughput::Elements(patterns.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("packed", PATTERNS),
        &(&circuit, &patterns),
        |b, (circuit, patterns)| {
            b.iter(|| good_simulate(circuit, patterns).expect("packed sim runs"));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("scalar", PATTERNS),
        &(&circuit, &patterns),
        |b, (circuit, patterns)| {
            b.iter(|| good_simulate_scalar(circuit, patterns).expect("scalar sim runs"));
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_packed
}
criterion_main!(benches);
