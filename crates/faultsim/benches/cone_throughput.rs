//! Event-driven cone-restricted fault simulation vs the full packed
//! faulty machine.
//!
//! Both sides run the same stuck-at campaign with fault dropping (each
//! fault simulates only until its first detecting word). The baseline
//! walks *every* gate of the circuit per simulated word on the packed
//! binary kernel; the event-driven path ([`first_detections`]) seeds the
//! fault site and evaluates only the divergence frontier inside its
//! fanout cone, exiting early on silent words. Besides the criterion
//! display, the run writes the machine-readable `BENCH_eventsim.json` at
//! the workspace root with the measured single-core speedup (the
//! acceptance floor is 3×) and the gates-evaluated reduction ratio.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use icd_cells::CellLibrary;
use icd_faultsim::{enumerate_stuck_at, first_detections, good_simulate, GateFault};
use icd_logic::{PackedEval, Pattern};
use icd_netlist::{generator, Circuit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIVISOR: usize = 90;
const PATTERNS: usize = 256;
const FAULT_SAMPLE: usize = 128;

fn build_input() -> (Circuit, Vec<Pattern>, Vec<GateFault>) {
    let lib = CellLibrary::standard().logic_library();
    let config = generator::circuit_b().scaled_down(DIVISOR);
    let circuit = generator::generate(&config, &lib).expect("circuit B builds at bench scale");
    assert!(
        circuit.num_gates() >= 7_000,
        "bench floor is a 7k-gate circuit, got {}",
        circuit.num_gates()
    );
    let width = circuit.inputs().len();
    let mut rng = StdRng::seed_from_u64(0xc04e5);
    let patterns: Vec<Pattern> = (0..PATTERNS)
        .map(|_| Pattern::from_bits((0..width).map(|_| rng.random::<bool>())))
        .collect();
    // A deterministic stride sample over the collapsed-order fault list.
    let all = enumerate_stuck_at(&circuit);
    let stride = (all.len() / FAULT_SAMPLE).max(1);
    let faults: Vec<GateFault> = all
        .iter()
        .step_by(stride)
        .take(FAULT_SAMPLE)
        .copied()
        .collect();
    (circuit, patterns, faults)
}

/// The full packed faulty machine: every gate of the circuit evaluated on
/// the packed binary kernel for every simulated word, fault forced onto
/// its site. Returns the first detecting pattern per fault (fault
/// dropping at word granularity, like the event path) and the number of
/// gate evaluations spent.
struct FullMachine {
    evals: Vec<PackedEval>,
    input_words: Vec<Vec<u64>>,
    good_values: Vec<Vec<u64>>,
    words: usize,
    tails: Vec<u64>,
}

impl FullMachine {
    fn new(circuit: &Circuit, patterns: &[Pattern]) -> FullMachine {
        let evals: Vec<PackedEval> = circuit
            .topo_order()
            .iter()
            .map(|&g| PackedEval::from_table(circuit.gate_type(g).table()))
            .collect();
        let words = patterns.len().div_ceil(64).max(1);
        let tails: Vec<u64> = (0..words)
            .map(|w| {
                let filled = patterns.len().saturating_sub(w * 64).min(64);
                if filled == 64 {
                    !0
                } else {
                    (1u64 << filled) - 1
                }
            })
            .collect();
        let mut input_words = vec![vec![0u64; words]; circuit.inputs().len()];
        for (t, p) in patterns.iter().enumerate() {
            for (i, words) in input_words.iter_mut().enumerate() {
                if p[i] == icd_logic::Lv::One {
                    words[t / 64] |= 1 << (t % 64);
                }
            }
        }
        let mut machine = FullMachine {
            evals,
            input_words,
            good_values: Vec::new(),
            words,
            tails,
        };
        // The good machine is one full faulty-free pass.
        machine.good_values = (0..words)
            .map(|w| machine.simulate_word(circuit, w, None))
            .collect();
        machine
    }

    /// One full-topology packed pass of word `w`, with an optional
    /// (net, value-plane) force dominating its net.
    fn simulate_word(&self, circuit: &Circuit, w: usize, force: Option<(usize, u64)>) -> Vec<u64> {
        let mut values = vec![0u64; circuit.num_nets()];
        for (i, &net) in circuit.inputs().iter().enumerate() {
            values[net.index()] = self.input_words[i][w];
        }
        if let Some((site, word)) = force {
            values[site] = word;
        }
        let mut ins = Vec::with_capacity(8);
        for (k, &gate) in circuit.topo_order().iter().enumerate() {
            ins.clear();
            ins.extend(circuit.gate_inputs(gate).iter().map(|&n| values[n.index()]));
            let out = circuit.gate_output(gate).index();
            values[out] = self.evals[k].eval_binary_word(&ins);
            if let Some((site, word)) = force {
                if out == site {
                    values[out] = word;
                }
            }
        }
        values
    }

    /// First detecting pattern per fault; `gate_evals` accumulates the
    /// total number of packed gate evaluations spent.
    fn first_detections(
        &self,
        circuit: &Circuit,
        faults: &[GateFault],
        gate_evals: &mut u64,
    ) -> Vec<Option<usize>> {
        faults
            .iter()
            .map(|fault| {
                let (site, value) = match *fault {
                    GateFault::StuckAt { net, value } => (net.index(), value),
                    _ => unreachable!("the campaign is stuck-at only"),
                };
                for w in 0..self.words {
                    let plane = if value { !0u64 } else { 0u64 };
                    let values = self.simulate_word(circuit, w, Some((site, plane)));
                    *gate_evals += circuit.num_gates() as u64;
                    let mut diff = 0u64;
                    for &net in circuit.outputs() {
                        diff |= (values[net.index()] ^ self.good_values[w][net.index()])
                            & self.tails[w];
                    }
                    if diff != 0 {
                        return Some(w * 64 + diff.trailing_zeros() as usize);
                    }
                }
                None
            })
            .collect()
    }
}

/// Median-of-`runs` wall-clock seconds of `f`.
fn time_median<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64().max(1e-9)
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    circuit: &Circuit,
    faults: usize,
    full_s: f64,
    event_s: f64,
    full_gate_evals: u64,
    event_gate_evals: u64,
    dropped: u64,
) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"cone_throughput\",\n  \"circuit\": \"B/{DIVISOR}\",\n  \
         \"gates\": {},\n  \"patterns\": {PATTERNS},\n  \"faults\": {faults},\n  \
         \"cores\": {cores},\n  \
         \"full_seconds\": {full_s:.6},\n  \"event_seconds\": {event_s:.6},\n  \
         \"full_gate_evals\": {full_gate_evals},\n  \"event_gate_evals\": {event_gate_evals},\n  \
         \"gate_eval_reduction\": {:.1},\n  \"faults_dropped\": {dropped},\n  \
         \"speedup\": {:.3}\n}}\n",
        circuit.num_gates(),
        full_gate_evals as f64 / event_gate_evals.max(1) as f64,
        full_s / event_s,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eventsim.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn bench_cone(c: &mut Criterion) {
    let (circuit, patterns, faults) = build_input();
    let good = good_simulate(&circuit, &patterns).expect("good sim runs");
    let full = FullMachine::new(&circuit, &patterns);

    // Equivalence gate before timing anything: the event-driven campaign
    // and the full machine must agree on every first detection.
    let mut full_gate_evals = 0u64;
    let full_firsts = full.first_detections(&circuit, &faults, &mut full_gate_evals);
    let collector = icd_obs::Collector::new();
    let event_firsts = {
        let _active = collector.install_local();
        first_detections(&circuit, &good, &faults)
    };
    assert_eq!(
        event_firsts, full_firsts,
        "event-driven and full-machine campaigns disagree"
    );
    let snap = collector.snapshot();
    let event_gate_evals = snap.counters["eventsim.gates_evaluated"].0;
    let dropped = snap.counters["eventsim.faults_dropped"].0;

    let event_s = time_median(5, || {
        let _ = first_detections(&circuit, &good, &faults);
    });
    let full_s = time_median(3, || {
        let mut evals = 0u64;
        let _ = full.first_detections(&circuit, &faults, &mut evals);
    });
    write_json(
        &circuit,
        faults.len(),
        full_s,
        event_s,
        full_gate_evals,
        event_gate_evals,
        dropped,
    );

    // Criterion display: per-campaign latency over the same fault sample.
    let mut group = c.benchmark_group("stuck_at_campaign");
    group.sample_size(10);
    group.throughput(Throughput::Elements(faults.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("event_cone", faults.len()),
        &(&circuit, &good, &faults),
        |b, (circuit, good, faults)| {
            b.iter(|| first_detections(circuit, good, faults));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("full_packed", faults.len()),
        &(&circuit, &faults),
        |b, (circuit, faults)| {
            b.iter(|| {
                let mut evals = 0u64;
                full.first_detections(circuit, faults, &mut evals)
            });
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_cone
}
criterion_main!(benches);
