//! Gate-level simulation, fault models and tester emulation.
//!
//! The paper's flow begins with a production test: ATPG patterns are
//! applied to the DUT and failing responses are stored in a *datalog*
//! (Fig. 2). This crate provides everything needed to emulate that phase on
//! synthetic circuits:
//!
//! * [`good_simulate`] — bit-parallel (64 patterns/word) good-machine
//!   simulation that scales to the paper's multi-million-gate circuits.
//! * [`EventSim`] — event-driven, cone-restricted faulty-machine
//!   propagation: divergences are seeded at the fault site over the shared
//!   good machine and only the reached gates re-evaluate, with per-word
//!   early exit and fault dropping ([`first_detections`]).
//! * [`ternary_simulate`] / [`DiffPropagator`] — serial three-valued
//!   simulation and event-driven difference propagation (used for
//!   observability checks and faulty-response computation).
//! * [`GateFault`] — the classical fault models (stuck-at, transition,
//!   dominant bridging) with parallel-pattern single-fault detection
//!   ([`detects`]).
//! * [`FaultyGate`] / [`FaultyBehavior`] — the *faulty cell* abstraction:
//!   a defective standard-cell instance characterized at switch level
//!   (truth-table override, optionally with two-pattern delay behaviour)
//!   and simulated inside the gate-level circuit, exactly the paper's §4
//!   methodology.
//! * [`run_test`] — applies an ordered pattern set to a circuit with one
//!   faulty cell and produces the [`Datalog`].
//!
//! # Example
//!
//! ```
//! use icd_faultsim::{good_simulate, GateFault, detects};
//! use icd_logic::{Pattern, TruthTable};
//! use icd_netlist::{CircuitBuilder, GateType, Library};
//!
//! let mut lib = Library::new();
//! lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0]))?)?;
//! let mut b = CircuitBuilder::new("c", &lib);
//! let a = b.add_input("a");
//! let y = b.add_gate("INV", &[a], None)?;
//! b.mark_output(y, "y");
//! let circuit = b.finish()?;
//!
//! let patterns = vec!["0".parse::<Pattern>()?, "1".parse()?];
//! let good = good_simulate(&circuit, &patterns)?;
//! let fault = GateFault::stuck_at(y, true);
//! // y stuck-at-1 is detected by the pattern that sets y to 0 (input 1).
//! let det = detects(&circuit, &good, &fault);
//! assert_eq!(det, vec![false, true]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]
#![warn(missing_docs)]

mod bitsim;
mod datalog;
pub mod datalog_text;
mod error;
mod eventsim;
mod faults;
mod faulty_gate;
pub mod noise;
mod ternary;

pub use bitsim::{good_simulate, good_simulate_scalar, BitValues};
pub use datalog::{
    run_test, run_test_gate_fault, run_test_multi, run_test_multi_full, run_test_with_good,
    Datalog, DatalogEntry,
};
pub use error::FaultSimError;
pub use eventsim::EventSim;
pub use faults::{
    detects, detects_any, detects_with, enumerate_stuck_at, enumerate_transitions,
    first_detection_with, first_detections, GateFault,
};
pub use faulty_gate::{DelayTable, FaultyBehavior, FaultyGate};
pub use noise::{Corruption, NoiseModel, NoiseRng, SanitizeLog};
pub use ternary::{ternary_simulate, DiffPropagator};
