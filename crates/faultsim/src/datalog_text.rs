//! A line-oriented text format for [`Datalog`]s, standing in for the
//! tester's failure file (STDF-style datalogs in production):
//!
//! ```text
//! datalog circuitA
//! patterns 25
//! fail 3 0 4
//! fail 17 2
//! ```
//!
//! `fail <pattern index> <observe point index>…` — one line per failing
//! pattern, in application order. [`pretty`] renders the same information
//! with tester coordinates (PO pins and scan chain/cell positions).

use std::fmt::Write as _;

use icd_netlist::Circuit;

use crate::{Datalog, DatalogEntry, FaultSimError};

/// Serializes a datalog to the text format; round-trips through
/// [`parse`].
pub fn write(datalog: &Datalog) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "datalog {}", datalog.circuit_name);
    let _ = writeln!(out, "patterns {}", datalog.num_patterns);
    for e in &datalog.entries {
        let _ = write!(out, "fail {}", e.pattern_index);
        for &o in &e.failing_outputs {
            let _ = write!(out, " {o}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Parses the text format back into a [`Datalog`].
///
/// # Errors
///
/// Returns [`FaultSimError::ParseDatalog`] for malformed lines,
/// out-of-range pattern indices or out-of-order entries.
pub fn parse(text: &str) -> Result<Datalog, FaultSimError> {
    let err = |line: usize, message: &str| FaultSimError::ParseDatalog {
        line,
        message: message.to_owned(),
    };
    let mut name: Option<String> = None;
    let mut num_patterns: Option<usize> = None;
    let mut entries: Vec<DatalogEntry> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("datalog") => {
                name = Some(
                    words
                        .next()
                        .ok_or_else(|| err(lineno + 1, "missing circuit name"))?
                        .to_owned(),
                );
            }
            Some("patterns") => {
                num_patterns = Some(
                    words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err(lineno + 1, "missing pattern count"))?,
                );
            }
            Some("fail") => {
                let pattern_index: usize = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err(lineno + 1, "missing pattern index"))?;
                let total =
                    num_patterns.ok_or_else(|| err(lineno + 1, "fail before patterns line"))?;
                if pattern_index >= total {
                    return Err(err(lineno + 1, "pattern index out of range"));
                }
                if let Some(last) = entries.last() {
                    if last.pattern_index >= pattern_index {
                        return Err(err(lineno + 1, "entries out of order"));
                    }
                }
                let failing_outputs: Vec<usize> = words
                    .map(|w| w.parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| err(lineno + 1, "bad observe index"))?;
                if failing_outputs.is_empty() {
                    return Err(err(lineno + 1, "fail line without observe points"));
                }
                entries.push(DatalogEntry {
                    pattern_index,
                    failing_outputs,
                });
            }
            _ => return Err(err(lineno + 1, "unknown keyword")),
        }
    }
    Ok(Datalog {
        circuit_name: name.ok_or_else(|| err(0, "missing datalog line"))?,
        num_patterns: num_patterns.ok_or_else(|| err(0, "missing patterns line"))?,
        entries,
    })
}

/// Renders a datalog the way a tester would report it: per failing
/// pattern, the miscomparing PO pins and scan (chain, cell) coordinates.
pub fn pretty(datalog: &Datalog, circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "datalog {} — {}/{} patterns failing",
        datalog.circuit_name,
        datalog.entries.len(),
        datalog.num_patterns
    );
    for e in &datalog.entries {
        let _ = write!(out, "  pattern {:>5}:", e.pattern_index);
        for &o in &e.failing_outputs {
            let _ = write!(out, " [{}]", circuit.tester_coordinate(o));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Datalog {
        Datalog {
            circuit_name: "A".into(),
            num_patterns: 25,
            entries: vec![
                DatalogEntry {
                    pattern_index: 3,
                    failing_outputs: vec![0, 4],
                },
                DatalogEntry {
                    pattern_index: 17,
                    failing_outputs: vec![2],
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let log = sample();
        let text = write(&log);
        let back = parse(&text).unwrap();
        assert_eq!(back, log);
    }

    /// Asserts `parse(text)` fails with exactly `message` on 1-based line
    /// `line` (0 = whole-file error).
    fn assert_rejects(text: &str, line: usize, message: &str) {
        match parse(text) {
            Err(FaultSimError::ParseDatalog {
                line: got_line,
                message: got_message,
            }) => {
                assert_eq!(
                    (got_line, got_message.as_str()),
                    (line, message),
                    "on:\n{text}"
                );
            }
            other => panic!("expected parse error on:\n{text}\ngot {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_circuit_name() {
        assert_rejects("datalog\npatterns 5\n", 1, "missing circuit name");
    }

    #[test]
    fn rejects_missing_pattern_count() {
        assert_rejects("datalog A\npatterns\n", 2, "missing pattern count");
        assert_rejects("datalog A\npatterns many\n", 2, "missing pattern count");
    }

    #[test]
    fn rejects_missing_pattern_index() {
        assert_rejects("datalog A\npatterns 5\nfail\n", 3, "missing pattern index");
        assert_rejects(
            "datalog A\npatterns 5\nfail x 0\n",
            3,
            "missing pattern index",
        );
    }

    #[test]
    fn rejects_fail_before_patterns_line() {
        assert_rejects("datalog A\nfail 0 1\n", 2, "fail before patterns line");
    }

    #[test]
    fn rejects_out_of_range_pattern() {
        assert_rejects(
            "datalog A\npatterns 5\nfail 9 0\n",
            3,
            "pattern index out of range",
        );
    }

    #[test]
    fn rejects_out_of_order_entries() {
        assert_rejects(
            "datalog A\npatterns 9\nfail 5 0\nfail 2 0\n",
            4,
            "entries out of order",
        );
        // A duplicate index is also out of order.
        assert_rejects(
            "datalog A\npatterns 9\nfail 5 0\nfail 5 1\n",
            4,
            "entries out of order",
        );
    }

    #[test]
    fn rejects_bad_observe_index() {
        assert_rejects(
            "datalog A\npatterns 5\nfail 1 0 oops\n",
            3,
            "bad observe index",
        );
    }

    #[test]
    fn rejects_fail_line_without_observe_points() {
        assert_rejects(
            "datalog A\npatterns 5\nfail 1\n",
            3,
            "fail line without observe points",
        );
    }

    #[test]
    fn rejects_unknown_keyword() {
        assert_rejects("datalog A\npatterns 5\npass 1 0\n", 3, "unknown keyword");
    }

    #[test]
    fn rejects_missing_header() {
        assert_rejects("patterns 5\nfail 0 1\n", 0, "missing datalog line");
        assert_rejects("datalog A\n", 0, "missing patterns line");
        assert_rejects("", 0, "missing datalog line");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# tester dump\ndatalog A\n\npatterns 25\nfail 1 0\n";
        assert_eq!(parse(text).unwrap().entries.len(), 1);
    }

    #[test]
    fn pretty_uses_tester_coordinates() {
        use icd_cells::CellLibrary;
        use icd_netlist::generator;
        let cells = CellLibrary::standard();
        let logic = cells.logic_library();
        let cfg = generator::GeneratorConfig {
            name: "t".into(),
            gates: 60,
            primary_inputs: 6,
            primary_outputs: 4,
            flip_flops: 4,
            scan_chains: 2,
            seed: 8,
        };
        let c = generator::generate(&cfg, &logic).unwrap();
        let last = c.outputs().len() - 1; // a PPO by construction
        let log = Datalog {
            circuit_name: "t".into(),
            num_patterns: 4,
            entries: vec![DatalogEntry {
                pattern_index: 0,
                failing_outputs: vec![0, last],
            }],
        };
        let s = pretty(&log, &c);
        assert!(s.contains("chain"), "{s}");
        assert!(s.contains("PO"), "{s}");
    }
}
