use icd_logic::{Lv, Pattern};
use icd_netlist::{Circuit, GateId, NetId};

use crate::FaultSimError;

/// Serial three-valued simulation of one (possibly partially specified)
/// pattern. Returns the value of every net, indexed by [`NetId`].
///
/// # Errors
///
/// Returns [`FaultSimError::WrongPatternWidth`] when the pattern width
/// differs from the circuit's input count.
pub fn ternary_simulate(circuit: &Circuit, pattern: &Pattern) -> Result<Vec<Lv>, FaultSimError> {
    if pattern.len() != circuit.inputs().len() {
        return Err(FaultSimError::WrongPatternWidth {
            expected: circuit.inputs().len(),
            got: pattern.len(),
            pattern: 0,
        });
    }
    let mut values = vec![Lv::U; circuit.num_nets()];
    for (i, &net) in circuit.inputs().iter().enumerate() {
        values[net.index()] = pattern[i];
    }
    let mut ins: Vec<Lv> = Vec::with_capacity(8);
    for &gate in circuit.topo_order() {
        ins.clear();
        ins.extend(circuit.gate_inputs(gate).iter().map(|&n| values[n.index()]));
        let out = circuit
            .gate_type(gate)
            .table()
            .eval(&ins)
            .expect("arity checked at construction");
        values[circuit.gate_output(gate).index()] = out;
    }
    Ok(values)
}

/// Reusable event-driven difference propagator.
///
/// Given a base (good-machine) valuation and a set of forced net values, it
/// propagates the differences level by level through the fanout cones and
/// reports which circuit outputs change. Scratch buffers persist across
/// calls so repeated queries on a multi-million-net circuit do not
/// re-allocate.
#[derive(Debug)]
pub struct DiffPropagator {
    /// Overlay values; `overlay_stamp` says whether an entry is live.
    overlay: Vec<Lv>,
    overlay_stamp: Vec<u32>,
    stamp: u32,
    /// Per-level worklists of gates, plus a dirty flag per gate.
    queued: Vec<u32>,
}

impl DiffPropagator {
    /// Creates a propagator sized for `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        DiffPropagator {
            overlay: vec![Lv::U; circuit.num_nets()],
            overlay_stamp: vec![0; circuit.num_nets()],
            stamp: 0,
            queued: vec![0; circuit.num_gates()],
        }
    }

    /// The effective value of `net` after the last propagation: the overlay
    /// if the net changed, otherwise `base`.
    pub fn effective(&self, base: &[Lv], net: NetId) -> Lv {
        if self.overlay_stamp[net.index()] == self.stamp {
            self.overlay[net.index()]
        } else {
            base[net.index()]
        }
    }

    /// Propagates `forces` through the circuit on top of `base` and returns
    /// the outputs whose value definitely or possibly changed, with their
    /// new value.
    ///
    /// The returned vector lists `(output position, new value)` pairs for
    /// every circuit output whose effective value differs from `base`.
    /// Each call adds the number of gates it re-evaluated to the
    /// `eventsim.gates_evaluated` counter; calls where no force differs
    /// from the base return immediately and count one
    /// `eventsim.early_exits`.
    pub fn propagate(
        &mut self,
        circuit: &Circuit,
        base: &[Lv],
        forces: &[(NetId, Lv)],
    ) -> Vec<(usize, Lv)> {
        self.run(circuit, base, forces);
        // A forced output net with an empty fanout still changed, so the
        // output scan cannot be skipped once any force took effect.
        let stamp = self.stamp;
        circuit
            .outputs()
            .iter()
            .enumerate()
            .filter_map(|(i, &net)| {
                if self.overlay_stamp[net.index()] == stamp
                    && self.overlay[net.index()] != base[net.index()]
                {
                    Some((i, self.overlay[net.index()]))
                } else {
                    None
                }
            })
            .collect()
    }

    /// [`DiffPropagator::propagate`], but scanning only the output
    /// positions in `scan` (indices into `circuit.outputs()`).
    ///
    /// The caller must pass a superset of the positions the forces can
    /// reach — e.g. the union of the forced nets' fanout-cone
    /// observability sets ([`Circuit::observable_outputs`]) — otherwise
    /// reachable miscompares are silently dropped.
    pub fn propagate_within(
        &mut self,
        circuit: &Circuit,
        base: &[Lv],
        forces: &[(NetId, Lv)],
        scan: &[usize],
    ) -> Vec<(usize, Lv)> {
        self.run(circuit, base, forces);
        let stamp = self.stamp;
        let outputs = circuit.outputs();
        scan.iter()
            .filter_map(|&i| {
                let net = outputs[i];
                if self.overlay_stamp[net.index()] == stamp
                    && self.overlay[net.index()] != base[net.index()]
                {
                    Some((i, self.overlay[net.index()]))
                } else {
                    None
                }
            })
            .collect()
    }

    /// The shared propagation core: applies `forces` and drains the
    /// level-ordered frontier, leaving the result in the overlay under the
    /// current stamp.
    fn run(&mut self, circuit: &Circuit, base: &[Lv], forces: &[(NetId, Lv)]) {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Extremely rare wrap: clear stamps to stay sound.
            self.overlay_stamp.fill(0);
            self.queued.fill(0);
            self.stamp = 1;
        }
        let stamp = self.stamp;

        // Level-ordered worklist of gates to re-evaluate.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, GateId)>> =
            std::collections::BinaryHeap::new();
        let schedule = |g: GateId,
                        queued: &mut Vec<u32>,
                        heap: &mut std::collections::BinaryHeap<
            std::cmp::Reverse<(u32, GateId)>,
        >| {
            if queued[g.index()] != stamp {
                queued[g.index()] = stamp;
                heap.push(std::cmp::Reverse((circuit.gate_level(g), g)));
            }
        };

        let mut any_force = false;
        for &(net, value) in forces {
            if base[net.index()] == value {
                continue;
            }
            any_force = true;
            self.overlay[net.index()] = value;
            self.overlay_stamp[net.index()] = stamp;
            for &g in circuit.fanout(net) {
                schedule(g, &mut self.queued, &mut heap);
            }
        }
        if !any_force {
            icd_obs::counter("eventsim.early_exits", 1, icd_obs::Stability::Stable);
            return;
        }

        let mut evaluated = 0u64;
        let mut ins: Vec<Lv> = Vec::with_capacity(8);
        while let Some(std::cmp::Reverse((_, gate))) = heap.pop() {
            evaluated += 1;
            ins.clear();
            for &n in circuit.gate_inputs(gate) {
                ins.push(if self.overlay_stamp[n.index()] == stamp {
                    self.overlay[n.index()]
                } else {
                    base[n.index()]
                });
            }
            let new = circuit
                .gate_type(gate)
                .table()
                .eval(&ins)
                .expect("arity checked at construction");
            let out = circuit.gate_output(gate);
            let old_effective = if self.overlay_stamp[out.index()] == stamp {
                self.overlay[out.index()]
            } else {
                base[out.index()]
            };
            if new != old_effective {
                self.overlay[out.index()] = new;
                self.overlay_stamp[out.index()] = stamp;
                for &g in circuit.fanout(out) {
                    schedule(g, &mut self.queued, &mut heap);
                }
            }
        }
        icd_obs::counter(
            "eventsim.gates_evaluated",
            evaluated,
            icd_obs::Stability::Stable,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_logic::TruthTable;
    use icd_netlist::{CircuitBuilder, GateType, Library};

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new("AND2", ["A", "B"], TruthTable::from_fn(2, |b| b[0] & b[1])).unwrap(),
        )
        .unwrap();
        lib
    }

    /// y0 = a & b, y1 = !(a & b)
    fn circuit(lib: &Library) -> Circuit {
        let mut bld = CircuitBuilder::new("c", lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let m = bld.add_gate("AND2", &[a, b], None).unwrap();
        let n = bld.add_gate("INV", &[m], None).unwrap();
        bld.mark_output(m, "y0");
        bld.mark_output(n, "y1");
        bld.finish().unwrap()
    }

    #[test]
    fn ternary_sim_basics() {
        let lib = lib();
        let c = circuit(&lib);
        let vals = ternary_simulate(&c, &"11".parse().unwrap()).unwrap();
        assert_eq!(vals[c.outputs()[0].index()], Lv::One);
        assert_eq!(vals[c.outputs()[1].index()], Lv::Zero);
        // Partially specified: a=0 decides the AND regardless of b.
        let vals = ternary_simulate(&c, &"0U".parse().unwrap()).unwrap();
        assert_eq!(vals[c.outputs()[0].index()], Lv::Zero);
        assert_eq!(vals[c.outputs()[1].index()], Lv::One);
    }

    #[test]
    fn propagate_reaches_both_outputs() {
        let lib = lib();
        let c = circuit(&lib);
        let base = ternary_simulate(&c, &"11".parse().unwrap()).unwrap();
        let mut prop = DiffPropagator::new(&c);
        // Force the AND output (y0) to 0: both outputs change.
        let m = c.outputs()[0];
        let changed = prop.propagate(&c, &base, &[(m, Lv::Zero)]);
        assert_eq!(changed.len(), 2);
        assert!(changed.contains(&(0, Lv::Zero)));
        assert!(changed.contains(&(1, Lv::One)));
    }

    #[test]
    fn masked_force_changes_nothing() {
        let lib = lib();
        let c = circuit(&lib);
        // a=0: forcing b has no observable effect.
        let base = ternary_simulate(&c, &"01".parse().unwrap()).unwrap();
        let mut prop = DiffPropagator::new(&c);
        let b_net = c.inputs()[1];
        let changed = prop.propagate(&c, &base, &[(b_net, Lv::Zero)]);
        assert!(changed.is_empty());
    }

    #[test]
    fn propagator_is_reusable() {
        let lib = lib();
        let c = circuit(&lib);
        let base = ternary_simulate(&c, &"11".parse().unwrap()).unwrap();
        let mut prop = DiffPropagator::new(&c);
        let a = c.inputs()[0];
        for _ in 0..100 {
            let changed = prop.propagate(&c, &base, &[(a, Lv::Zero)]);
            assert_eq!(changed.len(), 2);
            let changed = prop.propagate(&c, &base, &[]);
            assert!(changed.is_empty());
        }
    }

    #[test]
    fn forcing_to_same_value_is_a_no_op() {
        let lib = lib();
        let c = circuit(&lib);
        let base = ternary_simulate(&c, &"11".parse().unwrap()).unwrap();
        let mut prop = DiffPropagator::new(&c);
        let a = c.inputs()[0];
        let changed = prop.propagate(&c, &base, &[(a, Lv::One)]);
        assert!(changed.is_empty());
    }
}
