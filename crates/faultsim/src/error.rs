use std::error::Error;
use std::fmt;

/// Errors produced by gate-level simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSimError {
    /// A pattern's width differs from the circuit's input count.
    WrongPatternWidth {
        /// Inputs the circuit declares.
        expected: usize,
        /// Width of the offending pattern.
        got: usize,
        /// Index of the offending pattern.
        pattern: usize,
    },
    /// Bit-parallel simulation requires fully specified (`0`/`1`) patterns.
    UnknownInPattern {
        /// Index of the offending pattern.
        pattern: usize,
    },
    /// The good machine produced an unknown value (library table with `U`
    /// entries) where a known value is required.
    UnknownGoodValue(String),
    /// A faulty-cell model's table arity differs from its gate's.
    WrongFaultArity {
        /// Inputs the gate declares.
        expected: usize,
        /// Inputs of the supplied model.
        got: usize,
    },
    /// A datalog text file could not be parsed.
    ParseDatalog {
        /// 1-based line number (0 for structural problems).
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for FaultSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSimError::WrongPatternWidth {
                expected,
                got,
                pattern,
            } => write!(
                f,
                "pattern {pattern} has width {got}, circuit expects {expected}"
            ),
            FaultSimError::UnknownInPattern { pattern } => {
                write!(f, "pattern {pattern} contains U; bit-parallel simulation needs fully specified patterns")
            }
            FaultSimError::UnknownGoodValue(net) => {
                write!(f, "good machine produced U on net {net:?}")
            }
            FaultSimError::WrongFaultArity { expected, got } => {
                write!(
                    f,
                    "faulty-cell model has {got} inputs, the gate has {expected}"
                )
            }
            FaultSimError::ParseDatalog { line, message } => {
                write!(f, "datalog parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for FaultSimError {}
