//! Deterministic datalog corruption: the noise model of production test.
//!
//! The paper assumes the datalog faithfully lists every failing pattern.
//! Production testers violate that in well-known ways, and a deployable
//! diagnosis engine has to keep working when they do:
//!
//! * **fail-memory truncation** — the tester stops recording after N
//!   failing patterns ([`Corruption::TruncateAfter`]);
//! * **dropped entries** — intermittent defects pass on re-test, retention
//!   faults escape at reduced voltage ([`Corruption::DropEntries`]);
//! * **spurious fails** — marginal timing, crosstalk or contactor noise
//!   add failing patterns unrelated to the defect
//!   ([`Corruption::SpuriousFails`]);
//! * **flipped observe points** — mis-mapped scan cells report the wrong
//!   failing outputs ([`Corruption::FlipOutputs`]);
//! * **log mangling** — STDF conversion duplicates or reorders records and
//!   garbles bytes ([`Corruption::DuplicateLines`],
//!   [`Corruption::ShuffleLines`], [`Corruption::GarbleBytes`]).
//!
//! [`NoiseModel`] applies a corruption sequence to a [`Datalog`]
//! (structured operations) or to its serialized text (line/byte
//! operations), deterministically from a seed, so the same model is both
//! a fault-injection rig for tests and a documented noise source for the
//! accuracy experiments (`EXPERIMENTS.md`).
//!
//! The corrupted output deliberately violates [`Datalog`]'s invariants
//! (sorted, in-range, non-duplicate entries) the same way real logs do;
//! [`Datalog::sanitize`] repairs what is repairable and reports what was
//! dropped.

use crate::{Datalog, DatalogEntry};

/// A tiny deterministic generator (SplitMix64) so the corruption harness
/// needs no RNG dependency and a `(seed, corruptions)` pair always
/// produces the same noisy datalog.
#[derive(Debug, Clone)]
pub struct NoiseRng(u64);

impl NoiseRng {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        NoiseRng(seed)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// One corruption primitive. Probabilities are per-entry (or per-line /
/// per-byte for the text operations) and clamped to `[0, 1]` on use.
#[derive(Debug, Clone, PartialEq)]
pub enum Corruption {
    /// Fail memory is full after `n` failing patterns: every later entry
    /// is silently discarded, exactly like a tester's fail buffer.
    TruncateAfter(usize),
    /// Each entry is independently dropped with probability `rate`
    /// (intermittent defect passing on some applications).
    DropEntries {
        /// Per-entry drop probability.
        rate: f64,
    },
    /// Spurious failing patterns are inserted: each *passing* pattern
    /// independently becomes a fail with probability `rate`, at a random
    /// observe point.
    SpuriousFails {
        /// Per-passing-pattern insertion probability.
        rate: f64,
    },
    /// Each recorded failing output is independently remapped to a random
    /// observe point with probability `rate` (scan-map mismatch).
    FlipOutputs {
        /// Per-observe-point remap probability.
        rate: f64,
    },
    /// Each `fail` line is duplicated with probability `rate` (STDF
    /// record replay). Text-level: visible after [`NoiseModel::apply_text`].
    DuplicateLines {
        /// Per-line duplication probability.
        rate: f64,
    },
    /// The `fail` lines are deterministically reordered (buffered chains
    /// flushing out of order). Text-level.
    ShuffleLines,
    /// Each byte is independently replaced with a random printable or
    /// control byte with probability `rate` (serial-link corruption).
    /// Text-level.
    GarbleBytes {
        /// Per-byte corruption probability.
        rate: f64,
    },
}

impl Corruption {
    /// Whether this primitive only acts on the serialized text.
    pub fn is_text_level(&self) -> bool {
        matches!(
            self,
            Corruption::DuplicateLines { .. }
                | Corruption::ShuffleLines
                | Corruption::GarbleBytes { .. }
        )
    }
}

/// A seedable sequence of corruptions emulating one noisy tester.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// RNG seed; the same seed and corruption list reproduce the same
    /// noisy datalog.
    pub seed: u64,
    /// Corruptions, applied in order.
    pub corruptions: Vec<Corruption>,
}

impl NoiseModel {
    /// An identity model (no corruption).
    pub fn clean(seed: u64) -> Self {
        NoiseModel {
            seed,
            corruptions: Vec::new(),
        }
    }

    /// A model with one corruption.
    pub fn single(seed: u64, corruption: Corruption) -> Self {
        NoiseModel {
            seed,
            corruptions: vec![corruption],
        }
    }

    /// Applies the structured corruptions to a datalog. `num_outputs` is
    /// the circuit's observe-point count, used to draw spurious/remapped
    /// output indices. Text-level corruptions are skipped here (see
    /// [`NoiseModel::apply_text`]).
    ///
    /// The result may violate the clean-datalog invariants exactly the way
    /// real noisy logs do (duplicate patterns after spurious insertion are
    /// avoided, but flipped outputs may repeat an index); run
    /// [`Datalog::sanitize`] before diagnosis.
    pub fn apply(&self, datalog: &Datalog, num_outputs: usize) -> Datalog {
        let mut rng = NoiseRng::new(self.seed);
        let mut log = datalog.clone();
        for c in &self.corruptions {
            match *c {
                Corruption::TruncateAfter(n) => log.entries.truncate(n),
                Corruption::DropEntries { rate } => {
                    log.entries.retain(|_| !rng.chance(rate.clamp(0.0, 1.0)));
                }
                Corruption::SpuriousFails { rate } => {
                    if num_outputs == 0 {
                        continue;
                    }
                    let failing: std::collections::HashSet<usize> =
                        log.entries.iter().map(|e| e.pattern_index).collect();
                    let mut extra: Vec<DatalogEntry> = Vec::new();
                    for pattern_index in (0..log.num_patterns).filter(|t| !failing.contains(t)) {
                        if rng.chance(rate.clamp(0.0, 1.0)) {
                            extra.push(DatalogEntry {
                                pattern_index,
                                failing_outputs: vec![rng.below(num_outputs)],
                            });
                        }
                    }
                    log.entries.append(&mut extra);
                    log.entries.sort_by_key(|e| e.pattern_index);
                }
                Corruption::FlipOutputs { rate } => {
                    if num_outputs == 0 {
                        continue;
                    }
                    for e in &mut log.entries {
                        for o in &mut e.failing_outputs {
                            if rng.chance(rate.clamp(0.0, 1.0)) {
                                *o = rng.below(num_outputs);
                            }
                        }
                    }
                }
                Corruption::DuplicateLines { .. }
                | Corruption::ShuffleLines
                | Corruption::GarbleBytes { .. } => {}
            }
        }
        log
    }

    /// Applies the text-level corruptions to a serialized datalog,
    /// returning a string that may no longer parse — the input for
    /// no-panic fuzzing of [`crate::datalog_text::parse`].
    pub fn apply_text(&self, text: &str) -> String {
        let mut rng = NoiseRng::new(self.seed ^ 0x5445_5854); // "TEXT"
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        for c in &self.corruptions {
            match *c {
                Corruption::DuplicateLines { rate } => {
                    let mut out = Vec::with_capacity(lines.len() * 2);
                    for l in lines {
                        let dup = l.starts_with("fail") && rng.chance(rate.clamp(0.0, 1.0));
                        out.push(l.clone());
                        if dup {
                            out.push(l);
                        }
                    }
                    lines = out;
                }
                Corruption::ShuffleLines => {
                    // Shuffle only the fail lines among themselves so the
                    // header stays put (headers survive buffering; data
                    // records do not).
                    let idx: Vec<usize> = lines
                        .iter()
                        .enumerate()
                        .filter(|(_, l)| l.starts_with("fail"))
                        .map(|(i, _)| i)
                        .collect();
                    let mut order = idx.clone();
                    for i in (1..order.len()).rev() {
                        order.swap(i, rng.below(i + 1));
                    }
                    let reordered: Vec<String> = order.iter().map(|&i| lines[i].clone()).collect();
                    for (slot, line) in idx.into_iter().zip(reordered) {
                        lines[slot] = line;
                    }
                }
                Corruption::GarbleBytes { rate } => {
                    for l in &mut lines {
                        let garbled: String = l
                            .bytes()
                            .map(|b| {
                                if rng.chance(rate.clamp(0.0, 1.0)) {
                                    // Random byte in the printable + control
                                    // range; may break tokens or numbers.
                                    (rng.below(0x60) as u8 + 0x20) as char
                                } else {
                                    b as char
                                }
                            })
                            .collect();
                        *l = garbled;
                    }
                }
                _ => {}
            }
        }
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }
}

/// What [`Datalog::sanitize`] had to repair — kept alongside the cleaned
/// log so downstream consumers can report *how* degraded their input was.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizeLog {
    /// Entries whose pattern index exceeded the applied-pattern count.
    pub out_of_range_entries: usize,
    /// Duplicate entries merged into their first occurrence.
    pub merged_duplicates: usize,
    /// Entries that arrived out of application order and were re-sorted.
    pub reordered_entries: usize,
    /// Observe-point indices outside the circuit interface, dropped.
    pub dropped_outputs: usize,
    /// Entries left with no valid observe point, dropped.
    pub empty_entries: usize,
}

impl SanitizeLog {
    /// Whether the datalog was already clean.
    pub fn is_clean(&self) -> bool {
        *self == SanitizeLog::default()
    }
}

impl std::fmt::Display for SanitizeLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(f, "datalog clean");
        }
        write!(
            f,
            "sanitized datalog: {} out-of-range, {} duplicate, {} reordered entries; \
             {} bad observe points, {} emptied entries",
            self.out_of_range_entries,
            self.merged_duplicates,
            self.reordered_entries,
            self.dropped_outputs,
            self.empty_entries
        )
    }
}

impl Datalog {
    /// Repairs a noisy datalog into one satisfying the clean invariants
    /// (entries sorted by pattern, unique, in range; observe points in
    /// `[0, num_outputs)` and deduplicated), reporting every repair.
    ///
    /// `num_outputs` bounds the observe-point indices (the circuit's
    /// output count). What cannot be repaired is dropped, never guessed:
    /// a truncated or thinned log stays truncated — that degradation is
    /// the ranking layer's job to absorb.
    #[must_use]
    pub fn sanitize(&self, num_outputs: usize) -> (Datalog, SanitizeLog) {
        let mut report = SanitizeLog::default();
        let mut entries: Vec<DatalogEntry> = Vec::with_capacity(self.entries.len());

        let mut last_index: Option<usize> = None;
        let mut sorted = true;
        for e in &self.entries {
            if e.pattern_index >= self.num_patterns {
                report.out_of_range_entries += 1;
                continue;
            }
            let mut outputs: Vec<usize> = Vec::with_capacity(e.failing_outputs.len());
            for &o in &e.failing_outputs {
                if o < num_outputs && !outputs.contains(&o) {
                    outputs.push(o);
                } else {
                    report.dropped_outputs += 1;
                }
            }
            if outputs.is_empty() {
                report.empty_entries += 1;
                continue;
            }
            if let Some(prev) = last_index {
                if e.pattern_index < prev {
                    sorted = false;
                }
            }
            last_index = Some(e.pattern_index);
            entries.push(DatalogEntry {
                pattern_index: e.pattern_index,
                failing_outputs: outputs,
            });
        }

        if !sorted {
            let moved = entries.len();
            entries.sort_by_key(|e| e.pattern_index);
            report.reordered_entries = moved;
        }

        // Merge duplicates (stable: entries are sorted by pattern now).
        let mut merged: Vec<DatalogEntry> = Vec::with_capacity(entries.len());
        for e in entries {
            match merged.last_mut() {
                Some(prev) if prev.pattern_index == e.pattern_index => {
                    report.merged_duplicates += 1;
                    for o in e.failing_outputs {
                        if !prev.failing_outputs.contains(&o) {
                            prev.failing_outputs.push(o);
                        }
                    }
                }
                _ => merged.push(e),
            }
        }

        (
            Datalog {
                circuit_name: self.circuit_name.clone(),
                num_patterns: self.num_patterns,
                entries: merged,
            },
            report,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Datalog {
        Datalog {
            circuit_name: "A".into(),
            num_patterns: 20,
            entries: (0..10)
                .map(|i| DatalogEntry {
                    pattern_index: i * 2,
                    failing_outputs: vec![i % 3],
                })
                .collect(),
        }
    }

    #[test]
    fn truncate_after_keeps_prefix() {
        let log = sample();
        let noisy = NoiseModel::single(1, Corruption::TruncateAfter(3)).apply(&log, 4);
        assert_eq!(noisy.entries.len(), 3);
        assert_eq!(noisy.entries[..], log.entries[..3]);
    }

    #[test]
    fn drop_entries_is_seeded_and_thins() {
        let log = sample();
        let m = NoiseModel::single(7, Corruption::DropEntries { rate: 0.5 });
        let a = m.apply(&log, 4);
        let b = m.apply(&log, 4);
        assert_eq!(a, b, "same seed, same corruption");
        assert!(a.entries.len() < log.entries.len());
        let different = NoiseModel::single(8, Corruption::DropEntries { rate: 0.5 });
        assert_ne!(different.apply(&log, 4), a, "seed changes the outcome");
    }

    #[test]
    fn spurious_fails_only_hit_passing_patterns() {
        let log = sample();
        let noisy = NoiseModel::single(3, Corruption::SpuriousFails { rate: 1.0 }).apply(&log, 4);
        // Every pattern now fails, the original entries are intact.
        assert_eq!(noisy.entries.len(), log.num_patterns);
        for e in &log.entries {
            assert!(noisy.entries.contains(e));
        }
        // Sorted by pattern index.
        assert!(noisy
            .entries
            .windows(2)
            .all(|w| w[0].pattern_index < w[1].pattern_index));
    }

    #[test]
    fn flip_outputs_stays_in_range() {
        let log = sample();
        let noisy = NoiseModel::single(9, Corruption::FlipOutputs { rate: 1.0 }).apply(&log, 7);
        assert_eq!(noisy.entries.len(), log.entries.len());
        for e in &noisy.entries {
            assert!(e.failing_outputs.iter().all(|&o| o < 7));
        }
    }

    #[test]
    fn zero_outputs_is_harmless() {
        let log = sample();
        for c in [
            Corruption::SpuriousFails { rate: 1.0 },
            Corruption::FlipOutputs { rate: 1.0 },
        ] {
            let noisy = NoiseModel::single(1, c).apply(&log, 0);
            assert_eq!(noisy.entries.len(), log.entries.len());
        }
    }

    #[test]
    fn text_corruptions_round_trip_through_apply_text() {
        let log = sample();
        let text = crate::datalog_text::write(&log);
        let m = NoiseModel {
            seed: 11,
            corruptions: vec![
                Corruption::DuplicateLines { rate: 0.5 },
                Corruption::ShuffleLines,
            ],
        };
        let a = m.apply_text(&text);
        assert_eq!(a, m.apply_text(&text), "deterministic");
        assert!(a.lines().count() >= text.lines().count());
        // The header is preserved in place.
        assert!(a.starts_with("datalog A"));
    }

    #[test]
    fn garbled_text_differs_and_is_deterministic() {
        let log = sample();
        let text = crate::datalog_text::write(&log);
        let m = NoiseModel::single(5, Corruption::GarbleBytes { rate: 0.3 });
        let a = m.apply_text(&text);
        assert_eq!(a, m.apply_text(&text));
        assert_ne!(a, text);
    }

    #[test]
    fn sanitize_repairs_shuffled_duplicated_log() {
        let mut log = sample();
        // Simulate replay + reorder + a bad observe point + out-of-range.
        log.entries.swap(0, 5);
        log.entries.push(log.entries[2].clone());
        log.entries.push(DatalogEntry {
            pattern_index: 99,
            failing_outputs: vec![0],
        });
        log.entries.push(DatalogEntry {
            pattern_index: 1,
            failing_outputs: vec![50],
        });
        let (clean, report) = log.sanitize(4);
        assert!(clean
            .entries
            .windows(2)
            .all(|w| w[0].pattern_index < w[1].pattern_index));
        assert_eq!(report.out_of_range_entries, 1);
        assert_eq!(report.merged_duplicates, 1);
        assert_eq!(report.empty_entries, 1); // the bad-observe-point entry
        assert_eq!(report.dropped_outputs, 1);
        assert!(report.reordered_entries > 0);
        assert!(!report.is_clean());
        // Idempotent: sanitizing a clean log changes nothing.
        let (again, rep2) = clean.sanitize(4);
        assert_eq!(again, clean);
        assert!(rep2.is_clean());
        assert_eq!(rep2.to_string(), "datalog clean");
    }

    #[test]
    fn sanitize_merges_duplicate_outputs_across_entries() {
        let log = Datalog {
            circuit_name: "c".into(),
            num_patterns: 4,
            entries: vec![
                DatalogEntry {
                    pattern_index: 2,
                    failing_outputs: vec![1, 1, 2],
                },
                DatalogEntry {
                    pattern_index: 2,
                    failing_outputs: vec![2, 3],
                },
            ],
        };
        let (clean, report) = log.sanitize(4);
        assert_eq!(clean.entries.len(), 1);
        assert_eq!(clean.entries[0].failing_outputs, vec![1, 2, 3]);
        assert_eq!(report.merged_duplicates, 1);
        assert_eq!(report.dropped_outputs, 1);
    }

    #[test]
    fn clean_model_is_identity() {
        let log = sample();
        assert_eq!(NoiseModel::clean(42).apply(&log, 4), log);
        let text = crate::datalog_text::write(&log);
        assert_eq!(NoiseModel::clean(42).apply_text(&text), text);
    }
}
