//! Event-driven, cone-restricted faulty-machine propagation.
//!
//! Every fault can only disturb the gates in its site's transitive
//! fanout cone, yet the original simulation paths re-walked the full
//! [`Circuit::topo_order`] per fault and pattern. [`EventSim`] instead
//! seeds one 64-lane divergence word at the fault site over the shared
//! bit-parallel good machine ([`BitValues`]) and evaluates only the
//! gates the divergence actually reaches, draining the frontier in
//! strict level order (every fanout successor sits at a strictly
//! greater level, so each gate is evaluated at most once per word).
//! When the forced word already matches the good machine the word is
//! abandoned before any gate evaluation — the fault is provably silent
//! for those 64 patterns.
//!
//! Correctness relies on two facts: gate evaluation is deterministic
//! per lane, so lanes where the site agrees with the good machine stay
//! equal to it everywhere downstream; and the level-bucket drain
//! evaluates a gate only after all its disturbed predecessors, so each
//! evaluation sees final effective input words. The full-topology walk
//! remains available as the differential oracle
//! ([`run_test_multi_full`](crate::run_test_multi_full), and the
//! `event_diff` suite holds the two byte-identical).
//!
//! The accumulated `eventsim.gates_evaluated` / `eventsim.early_exits`
//! counters quantify the saving; flush them with [`EventSim::observe`].
//! An `EventSim` is sized for one circuit: using it with a different
//! circuit than the one passed to [`EventSim::new`] is a logic error.

use std::sync::Arc;

use icd_logic::packed::PackedEval;
use icd_logic::Lv;
use icd_netlist::{Circuit, GateId, NetId};

use crate::bitsim::{build_evaluators, BitValues};
use crate::{DiffPropagator, FaultSimError};

/// Mask of lanes in word `w` that hold real patterns. Unlike
/// [`BitValues::tail_mask`] this is defined for any word index (words
/// entirely past the pattern count get an empty mask).
pub(crate) fn lane_mask(num_patterns: usize, w: usize) -> u64 {
    let filled = num_patterns.saturating_sub(w * 64).min(64);
    if filled == 64 {
        !0
    } else {
        (1u64 << filled) - 1
    }
}

/// Reusable event-driven word propagator over a shared good machine.
///
/// Scratch buffers (overlay words, stamps, per-level worklists) persist
/// across calls so injection campaigns that query thousands of faults
/// against one [`BitValues`] never re-allocate.
#[derive(Debug)]
pub struct EventSim {
    evals: Arc<Vec<PackedEval>>,
    /// Per-net overlay word; live iff `net_stamp` matches `stamp`.
    overlay: Vec<u64>,
    net_stamp: Vec<u32>,
    /// Dedup stamp for scheduled gates.
    gate_stamp: Vec<u32>,
    stamp: u32,
    /// Per-level frontier worklists, drained in ascending level order.
    buckets: Vec<Vec<GateId>>,
    /// Lowest / highest level holding scheduled gates this propagation.
    level_lo: usize,
    level_hi: usize,
    input_words: Vec<u64>,
    /// Lazily built scalar fallback for non-binary forced values.
    ternary: Option<DiffPropagator>,
    gates_evaluated: u64,
    early_exits: u64,
}

impl EventSim {
    /// Creates a propagator sized for `circuit`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSimError::UnknownGoodValue`] when a library cell's
    /// table has `U` entries (the packed binary kernel needs a fully
    /// specified good machine, as [`good_simulate`](crate::good_simulate)
    /// does).
    pub fn new(circuit: &Circuit) -> Result<Self, FaultSimError> {
        Ok(EventSim {
            evals: build_evaluators(circuit)?,
            overlay: vec![0; circuit.num_nets()],
            net_stamp: vec![0; circuit.num_nets()],
            gate_stamp: vec![0; circuit.num_gates()],
            stamp: 0,
            buckets: vec![Vec::new(); circuit.max_level() as usize + 1],
            level_lo: usize::MAX,
            level_hi: 0,
            input_words: Vec::with_capacity(8),
            ternary: None,
            gates_evaluated: 0,
            early_exits: 0,
        })
    }

    fn begin(&mut self) {
        if self.stamp == u32::MAX {
            // Extremely rare wrap: clear stamps to stay sound.
            self.net_stamp.fill(0);
            self.gate_stamp.fill(0);
            self.stamp = 1;
        } else {
            self.stamp += 1;
        }
        self.level_lo = usize::MAX;
        self.level_hi = 0;
    }

    fn schedule_fanout(&mut self, circuit: &Circuit, net: NetId) {
        for &g in circuit.fanout(net) {
            let gi = g.index();
            if self.gate_stamp[gi] != self.stamp {
                self.gate_stamp[gi] = self.stamp;
                let level = circuit.gate_level(g) as usize;
                self.buckets[level].push(g);
                self.level_lo = self.level_lo.min(level);
                self.level_hi = self.level_hi.max(level);
            }
        }
    }

    /// Forces word `w` of `site` to `faulty_word` (lanes past the
    /// pattern count are pinned to the good value) and propagates the
    /// divergence through the fanout cone over the good machine.
    ///
    /// Returns the mask of lanes where the site actually diverges; `0`
    /// means the fault is silent for this word and nothing was
    /// evaluated. Afterwards [`EventSim::word`] reads the effective
    /// faulty-machine value of any net for the same `w`, valid until the
    /// next propagation.
    pub fn propagate_word(
        &mut self,
        circuit: &Circuit,
        good: &BitValues,
        w: usize,
        site: NetId,
        faulty_word: u64,
    ) -> u64 {
        self.begin();
        let tail = lane_mask(good.num_patterns(), w);
        let site_good = good.word(site, w);
        let forced = (faulty_word & tail) | (site_good & !tail);
        let diff = forced ^ site_good;
        if diff == 0 {
            self.early_exits += 1;
            return 0;
        }
        self.overlay[site.index()] = forced;
        self.net_stamp[site.index()] = self.stamp;
        self.schedule_fanout(circuit, site);

        let mut input_words = std::mem::take(&mut self.input_words);
        let mut level = self.level_lo;
        // `level_hi` can grow while draining: successors always land on
        // strictly greater levels.
        while level <= self.level_hi && level < self.buckets.len() {
            if self.buckets[level].is_empty() {
                level += 1;
                continue;
            }
            let mut bucket = std::mem::take(&mut self.buckets[level]);
            for &gate in &bucket {
                self.gates_evaluated += 1;
                input_words.clear();
                for &n in circuit.gate_inputs(gate) {
                    input_words.push(self.word(good, n, w));
                }
                let eval = &self.evals[circuit.gate_type_id(gate).index()];
                let new = eval.eval_binary_word(&input_words);
                let out = circuit.gate_output(gate);
                if out == site {
                    continue; // the fault dominates its own net
                }
                if new != good.word(out, w) {
                    self.overlay[out.index()] = new;
                    self.net_stamp[out.index()] = self.stamp;
                    self.schedule_fanout(circuit, out);
                }
            }
            bucket.clear();
            self.buckets[level] = bucket;
            level += 1;
        }
        self.input_words = input_words;
        diff
    }

    /// The effective faulty-machine word of `net` after the last
    /// [`EventSim::propagate_word`] (word index must match).
    pub fn word(&self, good: &BitValues, net: NetId, w: usize) -> u64 {
        if self.net_stamp[net.index()] == self.stamp {
            self.overlay[net.index()]
        } else {
            good.word(net, w)
        }
    }

    /// Whether `net` was disturbed by the last propagation.
    pub fn disturbed(&self, net: NetId) -> bool {
        self.net_stamp[net.index()] == self.stamp
    }

    /// Scalar three-valued fallback for forced values the binary word
    /// path cannot carry (a faulty cell output degrading to `U`).
    /// Delegates to an internal, lazily built [`DiffPropagator`]; its
    /// gate evaluations are counted into the same `eventsim.*` family.
    pub fn propagate_ternary(
        &mut self,
        circuit: &Circuit,
        base: &[Lv],
        forces: &[(NetId, Lv)],
    ) -> Vec<(usize, Lv)> {
        self.ternary
            .get_or_insert_with(|| DiffPropagator::new(circuit))
            .propagate(circuit, base, forces)
    }

    /// Gates evaluated by the word path since the last
    /// [`EventSim::observe`].
    pub fn gates_evaluated(&self) -> u64 {
        self.gates_evaluated
    }

    /// Words abandoned without evaluating any gate since the last
    /// [`EventSim::observe`].
    pub fn early_exits(&self) -> u64 {
        self.early_exits
    }

    /// Flushes the accumulated counters to the installed [`icd_obs`]
    /// collector (`eventsim.gates_evaluated`, `eventsim.early_exits` —
    /// both scheduling-stable per-datalog sums) and resets them.
    pub fn observe(&mut self) {
        icd_obs::counter(
            "eventsim.gates_evaluated",
            self.gates_evaluated,
            icd_obs::Stability::Stable,
        );
        icd_obs::counter(
            "eventsim.early_exits",
            self.early_exits,
            icd_obs::Stability::Stable,
        );
        self.gates_evaluated = 0;
        self.early_exits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::good_simulate;
    use icd_logic::{Pattern, TruthTable};
    use icd_netlist::{CircuitBuilder, GateType, Library};

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new("AND2", ["A", "B"], TruthTable::from_fn(2, |b| b[0] & b[1])).unwrap(),
        )
        .unwrap();
        lib
    }

    /// y0 = a & b, y1 = !(a & b), y2 = !c (disjoint cone)
    fn circuit(lib: &Library) -> Circuit {
        let mut bld = CircuitBuilder::new("c", lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let c = bld.add_input("c");
        let m = bld.add_gate("AND2", &[a, b], None).unwrap();
        let n = bld.add_gate("INV", &[m], None).unwrap();
        let o = bld.add_gate("INV", &[c], None).unwrap();
        bld.mark_output(m, "y0");
        bld.mark_output(n, "y1");
        bld.mark_output(o, "y2");
        bld.finish().unwrap()
    }

    #[test]
    fn lane_masks_cover_tail_and_out_of_range_words() {
        assert_eq!(lane_mask(0, 0), 0);
        assert_eq!(lane_mask(64, 0), !0);
        assert_eq!(lane_mask(70, 1), (1 << 6) - 1);
        assert_eq!(lane_mask(70, 2), 0);
    }

    #[test]
    fn divergence_stays_inside_the_cone() {
        let lib = lib();
        let c = circuit(&lib);
        let pats: Vec<Pattern> = ["110", "000", "111"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let good = good_simulate(&c, &pats).unwrap();
        let mut sim = EventSim::new(&c).unwrap();
        let m = c.outputs()[0];
        // Force the AND output to all-ones: diverges on patterns 1 (good 0).
        let diff = sim.propagate_word(&c, &good, 0, m, !0);
        assert_eq!(diff, 0b010);
        // y0 and y1 disturbed, the disjoint y2 untouched.
        assert!(sim.disturbed(c.outputs()[0]));
        assert!(sim.disturbed(c.outputs()[1]));
        assert!(!sim.disturbed(c.outputs()[2]));
        // y1 = !y0 with y0 forced to all-ones: all real lanes drop to 0.
        assert_eq!(sim.word(&good, c.outputs()[1], 0) & 0b111, 0b000);
        // Only the inverter was evaluated (the forced site's driver is
        // upstream and never re-runs).
        assert_eq!(sim.gates_evaluated(), 1);
    }

    #[test]
    fn silent_words_exit_before_any_evaluation() {
        let lib = lib();
        let c = circuit(&lib);
        let pats: Vec<Pattern> = ["110", "111"].iter().map(|s| s.parse().unwrap()).collect();
        let good = good_simulate(&c, &pats).unwrap();
        let mut sim = EventSim::new(&c).unwrap();
        let m = c.outputs()[0];
        // Force the good values back: silent.
        let diff = sim.propagate_word(&c, &good, 0, m, good.word(m, 0));
        assert_eq!(diff, 0);
        assert_eq!(sim.early_exits(), 1);
        assert_eq!(sim.gates_evaluated(), 0);
        // Lanes past the pattern count are pinned to good: still silent.
        let diff = sim.propagate_word(&c, &good, 0, m, good.word(m, 0) | (!0 << 2));
        assert_eq!(diff, 0);
        assert_eq!(sim.early_exits(), 2);
    }

    #[test]
    fn observe_flushes_and_resets_counters() {
        let lib = lib();
        let c = circuit(&lib);
        let pats: Vec<Pattern> = ["110"].iter().map(|s| s.parse().unwrap()).collect();
        let good = good_simulate(&c, &pats).unwrap();
        let mut sim = EventSim::new(&c).unwrap();
        sim.propagate_word(&c, &good, 0, c.outputs()[0], 0);
        let collector = icd_obs::Collector::new();
        {
            let _active = collector.install_local();
            sim.observe();
        }
        let snap = collector.snapshot();
        assert_eq!(snap.counters["eventsim.gates_evaluated"].0, 1);
        assert_eq!(snap.counters["eventsim.early_exits"].0, 0);
        assert_eq!(sim.gates_evaluated(), 0);
    }
}
