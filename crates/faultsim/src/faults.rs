use std::fmt;

use icd_netlist::{Circuit, NetId};

use crate::bitsim::BitValues;
use crate::eventsim::EventSim;

/// A classical gate-level fault, used by ATPG and by inter-cell diagnosis.
///
/// Transition faults follow the standard ordered-pattern-sequence
/// semantics: the fault is excited at pattern `t` when the net transitions
/// in the slow direction between patterns `t-1` and `t` (the first pattern
/// never excites a transition fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateFault {
    /// The net is stuck at a constant value.
    StuckAt {
        /// The faulty net.
        net: NetId,
        /// The stuck value.
        value: bool,
    },
    /// The `0 → 1` transition of the net is too slow.
    SlowToRise {
        /// The faulty net.
        net: NetId,
    },
    /// The `1 → 0` transition of the net is too slow.
    SlowToFall {
        /// The faulty net.
        net: NetId,
    },
    /// A dominant bridge: the victim takes the aggressor's value.
    Bridging {
        /// The dominated net.
        victim: NetId,
        /// The dominating net.
        aggressor: NetId,
    },
}

impl GateFault {
    /// Shorthand constructor for stuck-at faults.
    pub fn stuck_at(net: NetId, value: bool) -> Self {
        GateFault::StuckAt { net, value }
    }

    /// The net whose value the fault corrupts.
    pub fn site(&self) -> NetId {
        match *self {
            GateFault::StuckAt { net, .. }
            | GateFault::SlowToRise { net }
            | GateFault::SlowToFall { net } => net,
            GateFault::Bridging { victim, .. } => victim,
        }
    }
}

impl fmt::Display for GateFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GateFault::StuckAt { net, value } => {
                write!(f, "{net} sa{}", u8::from(value))
            }
            GateFault::SlowToRise { net } => write!(f, "{net} str"),
            GateFault::SlowToFall { net } => write!(f, "{net} stf"),
            GateFault::Bridging { victim, aggressor } => {
                write!(f, "{victim}<-{aggressor}")
            }
        }
    }
}

/// Both stuck-at polarities on every net of the circuit (uncollapsed).
pub fn enumerate_stuck_at(circuit: &Circuit) -> Vec<GateFault> {
    circuit
        .nets()
        .flat_map(|n| {
            [
                GateFault::StuckAt {
                    net: n,
                    value: false,
                },
                GateFault::StuckAt {
                    net: n,
                    value: true,
                },
            ]
        })
        .collect()
}

/// Both transition-fault polarities on every net of the circuit.
pub fn enumerate_transitions(circuit: &Circuit) -> Vec<GateFault> {
    circuit
        .nets()
        .flat_map(|n| {
            [
                GateFault::SlowToRise { net: n },
                GateFault::SlowToFall { net: n },
            ]
        })
        .collect()
}

/// The word at the fault site in the faulty machine (bit `t` = value under
/// pattern `t`).
pub(crate) fn faulty_site_word(good: &BitValues, fault: &GateFault, w: usize) -> u64 {
    match *fault {
        GateFault::StuckAt { value, .. } => {
            if value {
                !0u64
            } else {
                0u64
            }
        }
        GateFault::SlowToRise { net } => {
            let cur = good.word(net, w);
            let prev = previous_word(good, net, w);
            // A rising bit stays at 0.
            cur & !(cur & !prev)
        }
        GateFault::SlowToFall { net } => {
            let cur = good.word(net, w);
            let prev = previous_word(good, net, w);
            // A falling bit stays at 1.
            cur | (!cur & prev)
        }
        GateFault::Bridging { aggressor, .. } => good.word(aggressor, w),
    }
}

/// The value of `net` one pattern earlier, bit-aligned with word `w`. The
/// first pattern's "previous" value is itself (no transition).
pub(crate) fn previous_word(good: &BitValues, net: NetId, w: usize) -> u64 {
    let cur = good.word(net, w);
    let carry = if w == 0 {
        cur & 1 // pattern 0 has no predecessor: replicate itself
    } else {
        good.word(net, w - 1) >> 63
    };
    (cur << 1) | carry
}

/// Parallel-pattern single-fault simulation: which patterns detect `fault`
/// at at least one circuit output?
///
/// Feedback bridges (aggressor inside the victim's fanout cone) use the
/// aggressor's *good* value, i.e. the loop is evaluated once. One-shot
/// wrapper around [`detects_with`] that also flushes the `eventsim.*`
/// counters; campaigns over many faults should share one [`EventSim`].
pub fn detects(circuit: &Circuit, good: &BitValues, fault: &GateFault) -> Vec<bool> {
    let mut sim = EventSim::new(circuit).expect("good simulation already validated the library");
    let detected = detects_with(&mut sim, circuit, good, fault);
    sim.observe();
    detected
}

/// [`detects`] on a caller-provided [`EventSim`], so injection campaigns
/// reuse one set of scratch buffers across thousands of faults.
pub fn detects_with(
    sim: &mut EventSim,
    circuit: &Circuit,
    good: &BitValues,
    fault: &GateFault,
) -> Vec<bool> {
    let mut detected = vec![false; good.num_patterns()];
    let site = fault.site();
    for w in 0..good.words_per_net() {
        let site_diff =
            sim.propagate_word(circuit, good, w, site, faulty_site_word(good, fault, w));
        if site_diff == 0 {
            continue;
        }
        // Lanes past the pattern count were pinned to the good machine at
        // the site, so output diffs are confined to real patterns.
        let mut diff = 0u64;
        for &out in circuit.outputs() {
            if sim.disturbed(out) {
                diff |= sim.word(good, out, w) ^ good.word(out, w);
            }
        }
        while diff != 0 {
            let t = diff.trailing_zeros() as usize;
            diff &= diff - 1;
            detected[w * 64 + t] = true;
        }
    }
    detected
}

/// The first pattern detecting `fault`, stopping the simulation as soon as
/// it is found (the per-fault half of fault dropping: once a detection is
/// known, the remaining pattern words are never simulated).
pub fn first_detection_with(
    sim: &mut EventSim,
    circuit: &Circuit,
    good: &BitValues,
    fault: &GateFault,
) -> Option<usize> {
    let site = fault.site();
    for w in 0..good.words_per_net() {
        let site_diff =
            sim.propagate_word(circuit, good, w, site, faulty_site_word(good, fault, w));
        if site_diff == 0 {
            continue;
        }
        let mut diff = 0u64;
        for &out in circuit.outputs() {
            if sim.disturbed(out) {
                diff |= sim.word(good, out, w) ^ good.word(out, w);
            }
        }
        if diff != 0 {
            return Some(w * 64 + diff.trailing_zeros() as usize);
        }
    }
    None
}

/// Fault-dropping simulation campaign: for each fault, the index of its
/// first detecting pattern (or `None` if undetected).
///
/// Every detected fault is *dropped* — its simulation stops at the first
/// detecting word instead of sweeping the full pattern set. One
/// [`EventSim`] is shared across the whole campaign; the number of dropped
/// faults is exported as the `eventsim.faults_dropped` counter alongside
/// the usual `eventsim.*` totals.
pub fn first_detections(
    circuit: &Circuit,
    good: &BitValues,
    faults: &[GateFault],
) -> Vec<Option<usize>> {
    let mut sim = EventSim::new(circuit).expect("good simulation already validated the library");
    let mut dropped = 0u64;
    let firsts: Vec<Option<usize>> = faults
        .iter()
        .map(|fault| {
            let first = first_detection_with(&mut sim, circuit, good, fault);
            dropped += u64::from(first.is_some());
            first
        })
        .collect();
    icd_obs::counter(
        "eventsim.faults_dropped",
        dropped,
        icd_obs::Stability::Stable,
    );
    sim.observe();
    firsts
}

/// Whether any pattern detects the fault (early-exits at the first
/// detection).
pub fn detects_any(circuit: &Circuit, good: &BitValues, fault: &GateFault) -> bool {
    let mut sim = EventSim::new(circuit).expect("good simulation already validated the library");
    let first = first_detection_with(&mut sim, circuit, good, fault);
    sim.observe();
    first.is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::good_simulate;
    use icd_logic::{Pattern, TruthTable};
    use icd_netlist::{CircuitBuilder, GateType, Library};

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new("AND2", ["A", "B"], TruthTable::from_fn(2, |b| b[0] & b[1])).unwrap(),
        )
        .unwrap();
        lib
    }

    /// y = a & b
    fn and_circuit(lib: &Library) -> Circuit {
        let mut bld = CircuitBuilder::new("c", lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let y = bld.add_gate("AND2", &[a, b], None).unwrap();
        bld.mark_output(y, "y");
        bld.finish().unwrap()
    }

    fn all_patterns2() -> Vec<Pattern> {
        (0..4)
            .map(|i| Pattern::from_bits([(i & 1) == 1, (i & 2) == 2]))
            .collect()
    }

    #[test]
    fn stuck_at_detection_matches_truth() {
        let lib = lib();
        let c = and_circuit(&lib);
        let good = good_simulate(&c, &all_patterns2()).unwrap();
        let y = c.outputs()[0];
        // y sa0 detected only where y is 1, i.e. pattern 3 (a=b=1).
        let det = detects(&c, &good, &GateFault::stuck_at(y, false));
        assert_eq!(det, vec![false, false, false, true]);
        // a sa1 detected where a=0 & b=1 (pattern 2).
        let a = c.inputs()[0];
        let det = detects(&c, &good, &GateFault::stuck_at(a, true));
        assert_eq!(det, vec![false, false, true, false]);
    }

    #[test]
    fn undetectable_fault_is_undetected() {
        let lib = lib();
        let c = and_circuit(&lib);
        // Only pattern 00: nothing distinguishes any stuck-at-0.
        let good = good_simulate(&c, &[Pattern::from_bits([false, false])]).unwrap();
        let y = c.outputs()[0];
        assert!(!detects_any(&c, &good, &GateFault::stuck_at(y, false)));
    }

    #[test]
    fn slow_to_rise_needs_a_rising_pair() {
        let lib = lib();
        let c = and_circuit(&lib);
        let y = c.outputs()[0];
        // Sequence: 00, 11, 11, 01. y = 0,1,1,0.
        let pats: Vec<Pattern> = ["00", "11", "11", "10"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let good = good_simulate(&c, &pats).unwrap();
        // y rises between patterns 0 and 1 only.
        let det = detects(&c, &good, &GateFault::SlowToRise { net: y });
        assert_eq!(det, vec![false, true, false, false]);
        // y falls between 2 and 3.
        let det = detects(&c, &good, &GateFault::SlowToFall { net: y });
        assert_eq!(det, vec![false, false, false, true]);
    }

    #[test]
    fn first_pattern_never_excites_transitions() {
        let lib = lib();
        let c = and_circuit(&lib);
        let y = c.outputs()[0];
        let good = good_simulate(&c, &[Pattern::from_bits([true, true])]).unwrap();
        assert!(!detects_any(&c, &good, &GateFault::SlowToRise { net: y }));
    }

    #[test]
    fn bridging_dominates_victim() {
        let lib = lib();
        let mut bld = CircuitBuilder::new("c", &lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let y = bld.add_gate("AND2", &[a, b], None).unwrap();
        let ni = bld.add_gate("INV", &[a], None).unwrap();
        bld.mark_output(y, "y");
        bld.mark_output(ni, "ni");
        let c = bld.finish().unwrap();
        let good = good_simulate(&c, &all_patterns2()).unwrap();
        // Victim = inverter output, aggressor = a: detected whenever
        // !a != a, i.e. always... observed at output ni on every pattern.
        let det = detects(
            &c,
            &good,
            &GateFault::Bridging {
                victim: ni,
                aggressor: a,
            },
        );
        assert_eq!(det, vec![true; 4]);
    }

    #[test]
    fn enumerations_cover_all_nets() {
        let lib = lib();
        let c = and_circuit(&lib);
        assert_eq!(enumerate_stuck_at(&c).len(), 2 * c.num_nets());
        assert_eq!(enumerate_transitions(&c).len(), 2 * c.num_nets());
    }

    #[test]
    fn transition_detection_across_word_boundary() {
        let lib = lib();
        let c = and_circuit(&lib);
        let y = c.outputs()[0];
        // 70 patterns alternating 11, 00 -> y toggles every pattern.
        let pats: Vec<Pattern> = (0..70)
            .map(|i| Pattern::from_bits([i % 2 == 0, i % 2 == 0]))
            .collect();
        let good = good_simulate(&c, &pats).unwrap();
        let det = detects(&c, &good, &GateFault::SlowToRise { net: y });
        // y rises at every even pattern except 0.
        for (t, d) in det.iter().enumerate() {
            assert_eq!(*d, t != 0 && t % 2 == 0, "pattern {t}");
        }
    }
}
