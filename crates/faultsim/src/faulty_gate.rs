use icd_logic::{Lv, TruthTable};
use icd_netlist::GateId;

/// Two-pattern behaviour of a defective cell: the output observed at
/// capture time for every (previous, current) input combination.
///
/// This is the gate-level artifact the defect-characterization step
/// produces for delay-class defects (the paper's defects D3/D4). Entry
/// index is `prev * 2^n + cur`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayTable {
    inputs: usize,
    entries: Vec<Lv>,
}

impl DelayTable {
    /// Builds a table from a function of (previous, current) input bits.
    pub fn from_fn<F: FnMut(&[bool], &[bool]) -> Lv>(inputs: usize, mut f: F) -> Self {
        let combos = 1usize << inputs;
        let mut entries = Vec::with_capacity(combos * combos);
        let mut prev = vec![false; inputs];
        let mut cur = vec![false; inputs];
        for p in 0..combos {
            for (k, b) in prev.iter_mut().enumerate() {
                *b = (p >> k) & 1 == 1;
            }
            for c in 0..combos {
                for (k, b) in cur.iter_mut().enumerate() {
                    *b = (c >> k) & 1 == 1;
                }
                entries.push(f(&prev, &cur));
            }
        }
        DelayTable { inputs, entries }
    }

    /// Number of cell inputs.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// The capture-time output for a (previous, current) input pair.
    ///
    /// # Panics
    ///
    /// Panics if either slice's length differs from `inputs()`.
    pub fn eval(&self, prev: &[bool], cur: &[bool]) -> Lv {
        assert_eq!(prev.len(), self.inputs, "prev arity");
        assert_eq!(cur.len(), self.inputs, "cur arity");
        let combos = 1usize << self.inputs;
        let mut p = 0usize;
        let mut c = 0usize;
        for k in 0..self.inputs {
            if prev[k] {
                p |= 1 << k;
            }
            if cur[k] {
                c |= 1 << k;
            }
        }
        self.entries[p * combos + c]
    }

    /// Whether any (prev, cur) pair produces a different output than the
    /// steady-state `good` table — i.e. the defect is ever observable.
    ///
    /// A floating (`U`) late entry retains the previous output (charge
    /// storage); the retained value is approximated by the previous good
    /// value, so a float across a good-output transition counts as a
    /// difference.
    pub fn differs_from_static(&self, good: &TruthTable) -> bool {
        let combos = 1usize << self.inputs;
        for p in 0..combos {
            for c in 0..combos {
                let late = self.entries[p * combos + c];
                let effective = if late == Lv::U {
                    good.entries()[p]
                } else {
                    late
                };
                if effective.conflicts_with(good.entries()[c]) {
                    return true;
                }
            }
        }
        false
    }
}

/// The behaviour of one defective cell instance, as characterized at
/// switch level by the defect-injection campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultyBehavior {
    /// A static defect: the cell computes this (possibly partially
    /// floating) truth table. `U` entries model a floating output, which
    /// *retains its previous value* (charge storage) — this is how
    /// CMOS stuck-open defects become two-pattern-dependent.
    Static(TruthTable),
    /// A resistive (delay-class) defect: the capture-time output depends on
    /// the previous pattern.
    Delay(DelayTable),
}

impl FaultyBehavior {
    /// Number of cell inputs the behaviour expects.
    pub fn inputs(&self) -> usize {
        match self {
            FaultyBehavior::Static(t) => t.inputs(),
            FaultyBehavior::Delay(t) => t.inputs(),
        }
    }

    /// The faulty cell's output at capture time.
    ///
    /// `prev_out` is the faulty machine's own output under the previous
    /// pattern; a floating (`U`) result retains it.
    pub fn eval(&self, prev: &[bool], cur: &[bool], prev_out: Lv) -> Lv {
        let raw = match self {
            FaultyBehavior::Static(t) => t.eval_bits(cur),
            FaultyBehavior::Delay(t) => t.eval(prev, cur),
        };
        if raw == Lv::U {
            prev_out
        } else {
            raw
        }
    }

    /// Whether the behaviour ever disagrees with `good` — a cheap
    /// pre-filter for the injection campaign.
    pub fn ever_differs_from(&self, good: &TruthTable) -> bool {
        match self {
            FaultyBehavior::Static(t) => {
                // An arity mismatch conservatively counts as "differs": the
                // campaign then proceeds into `run_test`, which surfaces the
                // structured `WrongFaultArity` error instead of panicking.
                good.differing_inputs(t).map_or(true, |d| !d.is_empty())
                    || t.entries().contains(&Lv::U)
            }
            FaultyBehavior::Delay(t) => t.differs_from_static(good),
        }
    }
}

/// A defective cell instance inside a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultyGate {
    /// Which gate instance is defective.
    pub gate: GateId,
    /// Its characterized behaviour.
    pub behavior: FaultyBehavior,
}

impl FaultyGate {
    /// Creates a faulty gate.
    pub fn new(gate: GateId, behavior: FaultyBehavior) -> Self {
        FaultyGate { gate, behavior }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and2() -> TruthTable {
        TruthTable::from_fn(2, |b| b[0] & b[1])
    }

    #[test]
    fn static_behavior_evaluates_table() {
        let b = FaultyBehavior::Static(TruthTable::from_fn(2, |_| false));
        assert_eq!(b.eval(&[true, true], &[true, true], Lv::Zero), Lv::Zero);
        assert!(b.ever_differs_from(&and2()));
    }

    #[test]
    fn floating_output_retains_previous_value() {
        // A table that floats on (1,1).
        let t = TruthTable::from_entries(2, vec![Lv::Zero, Lv::Zero, Lv::Zero, Lv::U]).unwrap();
        let b = FaultyBehavior::Static(t);
        assert_eq!(b.eval(&[false, false], &[true, true], Lv::One), Lv::One);
        assert_eq!(b.eval(&[false, false], &[true, true], Lv::Zero), Lv::Zero);
        // Floating entries count as potentially faulty.
        assert!(b.ever_differs_from(&and2()));
    }

    #[test]
    fn delay_table_round_trip() {
        // Slow output: late value = previous steady output.
        let good = and2();
        let t = DelayTable::from_fn(2, |prev, cur| {
            let old = good.eval_bits(prev);
            let new = good.eval_bits(cur);
            if old.conflicts_with(new) {
                old
            } else {
                new
            }
        });
        assert_eq!(t.eval(&[false, false], &[true, true]), Lv::Zero); // late rise
        assert_eq!(t.eval(&[true, true], &[true, false]), Lv::One); // late fall
        assert_eq!(t.eval(&[true, true], &[true, true]), Lv::One); // stable
        assert!(t.differs_from_static(&good));
    }

    #[test]
    fn benign_delay_table_reports_no_difference() {
        let good = and2();
        let t = DelayTable::from_fn(2, |_prev, cur| good.eval_bits(cur));
        assert!(!t.differs_from_static(&good));
        let b = FaultyBehavior::Delay(t);
        assert!(!b.ever_differs_from(&good));
    }

    #[test]
    #[should_panic(expected = "cur arity")]
    fn delay_eval_checks_arity() {
        let t = DelayTable::from_fn(2, |_, _| Lv::Zero);
        let _ = t.eval(&[false, false], &[false]);
    }
}
