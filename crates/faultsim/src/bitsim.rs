use icd_logic::{Lv, Pattern};
use icd_netlist::{Circuit, NetId};

use crate::FaultSimError;

/// Bit-parallel good-machine values: one bit per (net, pattern).
///
/// Patterns are packed 64 per `u64` word, net-major. Produced by
/// [`good_simulate`].
#[derive(Debug, Clone)]
pub struct BitValues {
    num_patterns: usize,
    words_per_net: usize,
    data: Vec<u64>,
}

impl BitValues {
    /// Number of simulated patterns.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Words per net (`ceil(num_patterns / 64)`).
    pub fn words_per_net(&self) -> usize {
        self.words_per_net
    }

    /// The value of `net` under pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern >= num_patterns()`.
    pub fn value(&self, net: NetId, pattern: usize) -> bool {
        assert!(pattern < self.num_patterns, "pattern index out of range");
        let w = self.word(net, pattern / 64);
        (w >> (pattern % 64)) & 1 == 1
    }

    /// One 64-pattern word of a net.
    pub fn word(&self, net: NetId, word_index: usize) -> u64 {
        self.data[net.index() * self.words_per_net + word_index]
    }

    /// The values a gate's input nets take under one pattern, as booleans.
    pub fn gate_input_bits(
        &self,
        circuit: &Circuit,
        gate: icd_netlist::GateId,
        pattern: usize,
    ) -> Vec<bool> {
        circuit
            .gate_inputs(gate)
            .iter()
            .map(|&n| self.value(n, pattern))
            .collect()
    }

    /// Mask with the low `num_patterns % 64` bits set for the final word
    /// (all bits set for full words).
    pub fn tail_mask(&self, word_index: usize) -> u64 {
        if word_index + 1 == self.words_per_net && !self.num_patterns.is_multiple_of(64) {
            (1u64 << (self.num_patterns % 64)) - 1
        } else {
            !0u64
        }
    }
}

/// Precomputed bitwise evaluator for one gate type: the minterms on which
/// the (fully specified) truth table is `1`.
#[derive(Debug, Clone)]
pub(crate) struct MintermEval {
    pub(crate) inputs: usize,
    pub(crate) one_minterms: Vec<u32>,
}

impl MintermEval {
    pub(crate) fn from_table(table: &icd_logic::TruthTable) -> Result<Self, FaultSimError> {
        let mut one_minterms = Vec::new();
        for (m, &v) in table.entries().iter().enumerate() {
            match v {
                Lv::One => one_minterms.push(m as u32),
                Lv::Zero => {}
                Lv::U => return Err(FaultSimError::UnknownGoodValue(format!("table entry {m}"))),
            }
        }
        Ok(MintermEval {
            inputs: table.inputs(),
            one_minterms,
        })
    }

    /// Evaluates one 64-pattern word from the input words.
    #[inline]
    pub(crate) fn eval_word(&self, input_words: &[u64]) -> u64 {
        debug_assert_eq!(input_words.len(), self.inputs);
        let mut out = 0u64;
        for &m in &self.one_minterms {
            let mut term = !0u64;
            for (i, &w) in input_words.iter().enumerate() {
                term &= if (m >> i) & 1 == 1 { w } else { !w };
            }
            out |= term;
        }
        out
    }
}

pub(crate) fn build_evaluators(circuit: &Circuit) -> Result<Vec<MintermEval>, FaultSimError> {
    circuit
        .library()
        .iter()
        .map(|(_, t)| MintermEval::from_table(t.table()))
        .collect()
}

/// Simulates the fault-free circuit over a set of fully specified patterns,
/// 64 patterns per machine word.
///
/// # Errors
///
/// Returns an error when a pattern has the wrong width or contains `U`, or
/// when a library cell's table has `U` entries.
pub fn good_simulate(circuit: &Circuit, patterns: &[Pattern]) -> Result<BitValues, FaultSimError> {
    let num_inputs = circuit.inputs().len();
    for (i, p) in patterns.iter().enumerate() {
        if p.len() != num_inputs {
            return Err(FaultSimError::WrongPatternWidth {
                expected: num_inputs,
                got: p.len(),
                pattern: i,
            });
        }
        if !p.is_fully_specified() {
            return Err(FaultSimError::UnknownInPattern { pattern: i });
        }
    }
    let words_per_net = patterns.len().div_ceil(64).max(1);
    let mut data = vec![0u64; circuit.num_nets() * words_per_net];

    // Load input words.
    for (pi, &net) in circuit.inputs().iter().enumerate() {
        for (t, p) in patterns.iter().enumerate() {
            if p[pi] == Lv::One {
                data[net.index() * words_per_net + t / 64] |= 1u64 << (t % 64);
            }
        }
    }

    let evals = build_evaluators(circuit)?;
    let mut input_words: Vec<u64> = Vec::with_capacity(8);
    for w in 0..words_per_net {
        for &gate in circuit.topo_order() {
            let eval = &evals[circuit.gate_type_id(gate).index()];
            input_words.clear();
            for &inp in circuit.gate_inputs(gate) {
                input_words.push(data[inp.index() * words_per_net + w]);
            }
            let out = eval.eval_word(&input_words);
            data[circuit.gate_output(gate).index() * words_per_net + w] = out;
        }
    }

    Ok(BitValues {
        num_patterns: patterns.len(),
        words_per_net,
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_logic::TruthTable;
    use icd_netlist::{CircuitBuilder, GateType, Library};

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new(
                "NAND2",
                ["A", "B"],
                TruthTable::from_fn(2, |b| !(b[0] & b[1])),
            )
            .unwrap(),
        )
        .unwrap();
        lib.insert(
            GateType::new("XOR2", ["A", "B"], TruthTable::from_fn(2, |b| b[0] ^ b[1])).unwrap(),
        )
        .unwrap();
        lib
    }

    /// y = (a NAND b) XOR (NOT a)
    fn circuit(lib: &Library) -> Circuit {
        let mut b = CircuitBuilder::new("c", lib);
        let a = b.add_input("a");
        let c = b.add_input("c");
        let n = b.add_gate("NAND2", &[a, c], None).unwrap();
        let i = b.add_gate("INV", &[a], None).unwrap();
        let y = b.add_gate("XOR2", &[n, i], None).unwrap();
        b.mark_output(y, "y");
        b.finish().unwrap()
    }

    fn reference(a: bool, c: bool) -> bool {
        !(a & c) ^ !a
    }

    #[test]
    fn matches_reference_on_all_input_combos() {
        let lib = lib();
        let circuit = circuit(&lib);
        let patterns: Vec<Pattern> = (0..4)
            .map(|i| Pattern::from_bits([(i & 1) == 1, (i & 2) == 2]))
            .collect();
        let vals = good_simulate(&circuit, &patterns).unwrap();
        let y = circuit.outputs()[0];
        for (t, p) in patterns.iter().enumerate() {
            let a = p[0] == Lv::One;
            let c = p[1] == Lv::One;
            assert_eq!(vals.value(y, t), reference(a, c), "pattern {t}");
        }
    }

    #[test]
    fn more_than_64_patterns_cross_word_boundary() {
        let lib = lib();
        let circuit = circuit(&lib);
        let patterns: Vec<Pattern> = (0..130)
            .map(|i| Pattern::from_bits([(i % 3) == 0, (i % 5) == 0]))
            .collect();
        let vals = good_simulate(&circuit, &patterns).unwrap();
        assert_eq!(vals.words_per_net(), 3);
        let y = circuit.outputs()[0];
        for t in 0..130 {
            assert_eq!(vals.value(y, t), reference(t % 3 == 0, t % 5 == 0));
        }
    }

    #[test]
    fn rejects_wrong_width() {
        let lib = lib();
        let circuit = circuit(&lib);
        let err = good_simulate(&circuit, &[Pattern::from_bits([true])]);
        assert!(matches!(err, Err(FaultSimError::WrongPatternWidth { .. })));
    }

    #[test]
    fn rejects_unknowns() {
        let lib = lib();
        let circuit = circuit(&lib);
        let err = good_simulate(&circuit, &["0U".parse().unwrap()]);
        assert!(matches!(err, Err(FaultSimError::UnknownInPattern { .. })));
    }

    #[test]
    fn minterm_eval_word_matches_table() {
        let t = TruthTable::from_fn(3, |b| (b[0] & b[1]) | b[2]);
        let eval = MintermEval::from_table(&t).unwrap();
        // Pack the 8 combos into one word, inputs as bit masks.
        let a = 0b10101010u64;
        let b = 0b11001100u64;
        let c = 0b11110000u64;
        let out = eval.eval_word(&[a, b, c]);
        for combo in 0..8 {
            let bits = [
                (a >> combo) & 1 == 1,
                (b >> combo) & 1 == 1,
                (c >> combo) & 1 == 1,
            ];
            assert_eq!((out >> combo) & 1 == 1, t.eval_bits(&bits) == Lv::One);
        }
    }
}
