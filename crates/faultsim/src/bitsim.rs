use icd_logic::packed::PackedEval;
use icd_logic::{Lv, Pattern};
use icd_netlist::{Circuit, NetId};

use crate::{ternary_simulate, FaultSimError};

/// Bit-parallel good-machine values: one bit per (net, pattern).
///
/// Patterns are packed 64 per `u64` word, net-major. Produced by
/// [`good_simulate`].
#[derive(Debug, Clone)]
pub struct BitValues {
    num_patterns: usize,
    words_per_net: usize,
    data: Vec<u64>,
}

impl BitValues {
    /// Number of simulated patterns.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Words per net (`ceil(num_patterns / 64)`).
    pub fn words_per_net(&self) -> usize {
        self.words_per_net
    }

    /// The value of `net` under pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern >= num_patterns()`.
    pub fn value(&self, net: NetId, pattern: usize) -> bool {
        assert!(pattern < self.num_patterns, "pattern index out of range");
        let w = self.word(net, pattern / 64);
        (w >> (pattern % 64)) & 1 == 1
    }

    /// One 64-pattern word of a net.
    pub fn word(&self, net: NetId, word_index: usize) -> u64 {
        self.data[net.index() * self.words_per_net + word_index]
    }

    /// The values a gate's input nets take under one pattern, as booleans.
    pub fn gate_input_bits(
        &self,
        circuit: &Circuit,
        gate: icd_netlist::GateId,
        pattern: usize,
    ) -> Vec<bool> {
        circuit
            .gate_inputs(gate)
            .iter()
            .map(|&n| self.value(n, pattern))
            .collect()
    }

    /// Mask with the low `num_patterns % 64` bits set for the final word
    /// (all bits set for full words).
    pub fn tail_mask(&self, word_index: usize) -> u64 {
        if word_index + 1 == self.words_per_net && !self.num_patterns.is_multiple_of(64) {
            (1u64 << (self.num_patterns % 64)) - 1
        } else {
            !0u64
        }
    }
}

/// One [`PackedEval`] per library type of the circuit, rejecting tables
/// with `U` entries (good machines are fully specified).
///
/// The evaluators are compiled once per circuit
/// ([`Circuit::packed_evaluators`]) and shared by every simulation path.
pub(crate) fn build_evaluators(
    circuit: &Circuit,
) -> Result<std::sync::Arc<Vec<PackedEval>>, FaultSimError> {
    let evals = circuit.packed_evaluators();
    for ((_, t), eval) in circuit.library().iter().zip(evals.iter()) {
        if eval.has_unknown_entries() {
            return Err(FaultSimError::UnknownGoodValue(format!(
                "table of {} has U entries",
                t.name()
            )));
        }
    }
    Ok(std::sync::Arc::clone(evals))
}

fn validate_patterns(circuit: &Circuit, patterns: &[Pattern]) -> Result<(), FaultSimError> {
    let num_inputs = circuit.inputs().len();
    for (i, p) in patterns.iter().enumerate() {
        if p.len() != num_inputs {
            return Err(FaultSimError::WrongPatternWidth {
                expected: num_inputs,
                got: p.len(),
                pattern: i,
            });
        }
        if !p.is_fully_specified() {
            return Err(FaultSimError::UnknownInPattern { pattern: i });
        }
    }
    Ok(())
}

/// Simulates the fault-free circuit over a set of fully specified patterns,
/// 64 patterns per machine word, on the shared [`icd_logic::packed`]
/// kernel (binary fast path).
///
/// Every call adds `words × gates` to the `packed.words_simulated`
/// [`icd_obs`] counter. [`good_simulate_scalar`] is the differential
/// oracle for this function.
///
/// # Errors
///
/// Returns an error when a pattern has the wrong width or contains `U`, or
/// when a library cell's table has `U` entries.
pub fn good_simulate(circuit: &Circuit, patterns: &[Pattern]) -> Result<BitValues, FaultSimError> {
    validate_patterns(circuit, patterns)?;
    let words_per_net = patterns.len().div_ceil(64).max(1);
    let mut data = vec![0u64; circuit.num_nets() * words_per_net];

    // Load input words.
    for (pi, &net) in circuit.inputs().iter().enumerate() {
        for (t, p) in patterns.iter().enumerate() {
            if p[pi] == Lv::One {
                data[net.index() * words_per_net + t / 64] |= 1u64 << (t % 64);
            }
        }
    }

    let evals = build_evaluators(circuit)?;
    let mut input_words: Vec<u64> = Vec::with_capacity(8);
    for w in 0..words_per_net {
        for &gate in circuit.topo_order() {
            let eval = &evals[circuit.gate_type_id(gate).index()];
            input_words.clear();
            for &inp in circuit.gate_inputs(gate) {
                input_words.push(data[inp.index() * words_per_net + w]);
            }
            let out = eval.eval_binary_word(&input_words);
            data[circuit.gate_output(gate).index() * words_per_net + w] = out;
        }
    }
    icd_obs::counter(
        "packed.words_simulated",
        (words_per_net * circuit.num_gates()) as u64,
        icd_obs::Stability::Stable,
    );

    Ok(BitValues {
        num_patterns: patterns.len(),
        words_per_net,
        data,
    })
}

/// The scalar differential oracle for [`good_simulate`]: one
/// [`ternary_simulate`] call per pattern, packed into the same
/// [`BitValues`] layout.
///
/// Bits beyond the pattern count are left at `0`, so compare per-lane (or
/// through [`BitValues::tail_mask`]), not by raw word. Every call adds
/// `patterns` to the `packed.scalar_fallbacks` [`icd_obs`] counter.
///
/// # Errors
///
/// Same contract as [`good_simulate`]; additionally reports
/// [`FaultSimError::UnknownGoodValue`] if a net simulates to `U` (which a
/// fully specified pattern set cannot produce on a `U`-free library).
pub fn good_simulate_scalar(
    circuit: &Circuit,
    patterns: &[Pattern],
) -> Result<BitValues, FaultSimError> {
    validate_patterns(circuit, patterns)?;
    // Match good_simulate's library validation so the two paths accept and
    // reject exactly the same inputs.
    build_evaluators(circuit)?;
    let words_per_net = patterns.len().div_ceil(64).max(1);
    let mut data = vec![0u64; circuit.num_nets() * words_per_net];
    for (t, p) in patterns.iter().enumerate() {
        let values = ternary_simulate(circuit, p)?;
        for (net, &v) in values.iter().enumerate() {
            match v {
                Lv::One => data[net * words_per_net + t / 64] |= 1u64 << (t % 64),
                Lv::Zero => {}
                Lv::U => {
                    return Err(FaultSimError::UnknownGoodValue(
                        circuit.net_name(NetId::from_index(net)),
                    ))
                }
            }
        }
    }
    icd_obs::counter(
        "packed.scalar_fallbacks",
        patterns.len() as u64,
        icd_obs::Stability::Stable,
    );
    Ok(BitValues {
        num_patterns: patterns.len(),
        words_per_net,
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_logic::TruthTable;
    use icd_netlist::{CircuitBuilder, GateType, Library};

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new(
                "NAND2",
                ["A", "B"],
                TruthTable::from_fn(2, |b| !(b[0] & b[1])),
            )
            .unwrap(),
        )
        .unwrap();
        lib.insert(
            GateType::new("XOR2", ["A", "B"], TruthTable::from_fn(2, |b| b[0] ^ b[1])).unwrap(),
        )
        .unwrap();
        lib
    }

    /// y = (a NAND b) XOR (NOT a)
    fn circuit(lib: &Library) -> Circuit {
        let mut b = CircuitBuilder::new("c", lib);
        let a = b.add_input("a");
        let c = b.add_input("c");
        let n = b.add_gate("NAND2", &[a, c], None).unwrap();
        let i = b.add_gate("INV", &[a], None).unwrap();
        let y = b.add_gate("XOR2", &[n, i], None).unwrap();
        b.mark_output(y, "y");
        b.finish().unwrap()
    }

    fn reference(a: bool, c: bool) -> bool {
        !(a & c) ^ !a
    }

    #[test]
    fn matches_reference_on_all_input_combos() {
        let lib = lib();
        let circuit = circuit(&lib);
        let patterns: Vec<Pattern> = (0..4)
            .map(|i| Pattern::from_bits([(i & 1) == 1, (i & 2) == 2]))
            .collect();
        let vals = good_simulate(&circuit, &patterns).unwrap();
        let y = circuit.outputs()[0];
        for (t, p) in patterns.iter().enumerate() {
            let a = p[0] == Lv::One;
            let c = p[1] == Lv::One;
            assert_eq!(vals.value(y, t), reference(a, c), "pattern {t}");
        }
    }

    #[test]
    fn more_than_64_patterns_cross_word_boundary() {
        let lib = lib();
        let circuit = circuit(&lib);
        let patterns: Vec<Pattern> = (0..130)
            .map(|i| Pattern::from_bits([(i % 3) == 0, (i % 5) == 0]))
            .collect();
        let vals = good_simulate(&circuit, &patterns).unwrap();
        assert_eq!(vals.words_per_net(), 3);
        let y = circuit.outputs()[0];
        for t in 0..130 {
            assert_eq!(vals.value(y, t), reference(t % 3 == 0, t % 5 == 0));
        }
    }

    #[test]
    fn rejects_wrong_width() {
        let lib = lib();
        let circuit = circuit(&lib);
        let err = good_simulate(&circuit, &[Pattern::from_bits([true])]);
        assert!(matches!(err, Err(FaultSimError::WrongPatternWidth { .. })));
    }

    #[test]
    fn rejects_unknowns() {
        let lib = lib();
        let circuit = circuit(&lib);
        let err = good_simulate(&circuit, &["0U".parse().unwrap()]);
        assert!(matches!(err, Err(FaultSimError::UnknownInPattern { .. })));
    }

    #[test]
    fn binary_eval_word_matches_table() {
        let t = TruthTable::from_fn(3, |b| (b[0] & b[1]) | b[2]);
        let eval = PackedEval::from_table(&t);
        // Pack the 8 combos into one word, inputs as bit masks.
        let a = 0b10101010u64;
        let b = 0b11001100u64;
        let c = 0b11110000u64;
        let out = eval.eval_binary_word(&[a, b, c]);
        for combo in 0..8 {
            let bits = [
                (a >> combo) & 1 == 1,
                (b >> combo) & 1 == 1,
                (c >> combo) & 1 == 1,
            ];
            assert_eq!((out >> combo) & 1 == 1, t.eval_bits(&bits) == Lv::One);
        }
    }

    #[test]
    fn scalar_oracle_agrees_with_packed_path() {
        let lib = lib();
        let circuit = circuit(&lib);
        // 70 patterns to cover the tail word of the second lane group.
        let patterns: Vec<Pattern> = (0..70)
            .map(|i| Pattern::from_bits([(i % 3) == 0, (i % 7) < 3]))
            .collect();
        let packed = good_simulate(&circuit, &patterns).unwrap();
        let scalar = good_simulate_scalar(&circuit, &patterns).unwrap();
        assert_eq!(scalar.num_patterns(), packed.num_patterns());
        for net in circuit.nets() {
            for t in 0..patterns.len() {
                assert_eq!(packed.value(net, t), scalar.value(net, t), "net {net:?}");
            }
        }
    }

    #[test]
    fn packed_counters_are_recorded() {
        let lib = lib();
        let circuit = circuit(&lib);
        let patterns: Vec<Pattern> = (0..70)
            .map(|i| Pattern::from_bits([i % 2 == 0, i % 3 == 0]))
            .collect();
        let collector = icd_obs::Collector::new();
        {
            let _active = collector.install_local();
            good_simulate(&circuit, &patterns).unwrap();
            good_simulate_scalar(&circuit, &patterns).unwrap();
        }
        let snap = collector.snapshot();
        // 2 words per net × 3 gates, and one scalar fallback per pattern.
        assert_eq!(snap.counters["packed.words_simulated"].0, 6);
        assert_eq!(snap.counters["packed.scalar_fallbacks"].0, 70);
    }
}
