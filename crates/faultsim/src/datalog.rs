use icd_logic::packed::{PackedEval, PackedWord};
use icd_logic::{Lv, Pattern};
use icd_netlist::{Circuit, GateId};

use crate::eventsim::{lane_mask, EventSim};
use crate::faults::faulty_site_word;
use crate::{good_simulate, BitValues, FaultSimError, FaultyBehavior, FaultyGate};

/// One failing pattern in the [`Datalog`]: which pattern failed and at
/// which observe points (indices into `circuit.outputs()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogEntry {
    /// Index of the failing pattern in the applied sequence.
    pub pattern_index: usize,
    /// Observe points (positions in `circuit.outputs()`) that miscompared.
    pub failing_outputs: Vec<usize>,
}

/// The tester's failure file: the paper's *datalog* (Fig. 2), listing every
/// failing pattern with its failing outputs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Datalog {
    /// Name of the tested circuit.
    pub circuit_name: String,
    /// Number of patterns applied.
    pub num_patterns: usize,
    /// Failing patterns, in application order.
    pub entries: Vec<DatalogEntry>,
}

impl Datalog {
    /// Indices of all failing patterns.
    pub fn failing_pattern_indices(&self) -> Vec<usize> {
        self.entries.iter().map(|e| e.pattern_index).collect()
    }

    /// Indices of all passing patterns.
    pub fn passing_pattern_indices(&self) -> Vec<usize> {
        let failing: std::collections::HashSet<usize> =
            self.failing_pattern_indices().into_iter().collect();
        (0..self.num_patterns)
            .filter(|t| !failing.contains(t))
            .collect()
    }

    /// Whether the device passed every pattern (a test escape or a good
    /// device).
    pub fn all_pass(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Converts one pattern's bit-parallel good values into a ternary base
/// valuation for event-driven propagation.
pub(crate) fn base_from_bits(circuit: &Circuit, good: &BitValues, pattern: usize) -> Vec<Lv> {
    (0..circuit.num_nets())
        .map(|i| Lv::from(good.value(icd_netlist::NetId::from_index(i), pattern)))
        .collect()
}

/// Applies an ordered pattern sequence to a circuit containing one faulty
/// cell and records the datalog, emulating the production test.
///
/// The faulty machine is exact for a single faulty cell: the cell's inputs
/// are upstream of the defect and therefore take their good values; the
/// cell's output is computed from the characterized [`FaultyBehavior`](crate::FaultyBehavior)
/// (including charge retention and previous-pattern dependence) and the
/// difference is propagated event-driven to the observe points. An output
/// that degrades to `U` is counted as failing (the tester observes an
/// intermediate/late value — the pessimistic reading).
///
/// The faulty cell's power-up output state is assumed to match the good
/// machine, so pattern 0 cannot fail purely due to unknown initial charge.
///
/// # Errors
///
/// Returns an error when patterns are malformed or the model's arity does
/// not match the gate's.
pub fn run_test(
    circuit: &Circuit,
    patterns: &[Pattern],
    faulty: &FaultyGate,
) -> Result<Datalog, FaultSimError> {
    let good = good_simulate(circuit, patterns)?;
    let mut sim = EventSim::new(circuit)?;
    run_test_with_good(circuit, patterns, &good, faulty, &mut sim)
}

/// [`run_test`] variant that reuses a precomputed good simulation and an
/// event-driven propagator — the fast path for injection campaigns that
/// apply the same pattern set to many faulty cells.
///
/// The faulty cell's per-pattern output is resolved serially first (charge
/// retention chains through patterns), then the divergences propagate 64
/// patterns per word through the cell's fanout cone; only patterns where
/// the cell output degrades to `U` fall back to scalar ternary
/// propagation. Flushes the `eventsim.*` counters on completion.
///
/// # Errors
///
/// Returns an error when the model's arity does not match the gate's.
pub fn run_test_with_good(
    circuit: &Circuit,
    patterns: &[Pattern],
    good: &BitValues,
    faulty: &FaultyGate,
    sim: &mut EventSim,
) -> Result<Datalog, FaultSimError> {
    let gate = faulty.gate;
    let expected = circuit.gate_type(gate).num_inputs();
    if faulty.behavior.inputs() != expected {
        return Err(FaultSimError::WrongFaultArity {
            expected,
            got: faulty.behavior.inputs(),
        });
    }
    let out_net = circuit.gate_output(gate);

    // Static behaviours depend only on the current (good-machine) cell
    // inputs, so their raw outputs are computed 64 patterns at a time on
    // the packed kernel; `U` lanes are resolved through the sequential
    // charge-retention chain below. Delay behaviours read the previous
    // pattern too and stay on the scalar path.
    let static_raw: Option<Vec<PackedWord>> = match &faulty.behavior {
        FaultyBehavior::Static(table) => {
            let eval = PackedEval::from_table(table);
            let words = good.words_per_net();
            let mut raw = Vec::with_capacity(words);
            let mut ins: Vec<PackedWord> = Vec::with_capacity(8);
            for w in 0..words {
                ins.clear();
                ins.extend(
                    circuit
                        .gate_inputs(gate)
                        .iter()
                        .map(|&n| PackedWord::new(good.word(n, w), !0)),
                );
                raw.push(
                    eval.eval_word(&ins)
                        .expect("behaviour arity checked against the gate above"),
                );
            }
            icd_obs::counter(
                "packed.words_simulated",
                words as u64,
                icd_obs::Stability::Stable,
            );
            Some(raw)
        }
        FaultyBehavior::Delay(_) => {
            icd_obs::counter(
                "packed.scalar_fallbacks",
                patterns.len() as u64,
                icd_obs::Stability::Stable,
            );
            None
        }
    };

    // Phase 1: resolve the faulty cell's output per pattern. Charge
    // retention and previous-pattern dependence chain serially through the
    // sequence, so this stays scalar — but it touches only the one cell.
    let mut out_values: Vec<Lv> = Vec::with_capacity(patterns.len());
    let mut prev_bits: Vec<bool> = Vec::new();
    let mut prev_out = Lv::U;
    for t in 0..patterns.len() {
        if t == 0 {
            prev_out = Lv::from(good.value(out_net, 0));
        }
        let faulty_out = match &static_raw {
            Some(raw) => {
                let v = raw[t / 64].lane(t % 64);
                // Floating (U) output retains the previous charge.
                if v == Lv::U {
                    prev_out
                } else {
                    v
                }
            }
            None => {
                let cur_bits = good.gate_input_bits(circuit, gate, t);
                if t == 0 {
                    prev_bits = cur_bits.clone();
                }
                let out = faulty.behavior.eval(&prev_bits, &cur_bits, prev_out);
                prev_bits = cur_bits;
                out
            }
        };
        out_values.push(faulty_out);
        prev_out = faulty_out;
    }

    // Phase 2: propagate the divergences 64 patterns at a time through
    // the cell's fanout cone. Lanes where the cell output degrades to `U`
    // (possible only for Delay behaviours — retention resolves static `U`
    // lanes to a previous binary charge) are pinned to the good machine in
    // the word and handled by the scalar ternary fallback.
    let mut entries = Vec::new();
    let mut diffs: Vec<(usize, u64)> = Vec::new();
    for w in 0..good.words_per_net() {
        let tail = lane_mask(patterns.len(), w);
        if tail == 0 {
            continue;
        }
        let site_good = good.word(out_net, w);
        let mut forced = site_good;
        let mut u_mask = 0u64;
        for lane in 0..64 {
            let bit = 1u64 << lane;
            if tail & bit == 0 {
                break; // the tail mask is a contiguous low-bit run
            }
            match out_values[w * 64 + lane] {
                Lv::One => forced |= bit,
                Lv::Zero => forced &= !bit,
                Lv::U => u_mask |= bit,
            }
        }
        forced = (forced & !u_mask) | (site_good & u_mask);
        let site_diff = sim.propagate_word(circuit, good, w, out_net, forced);

        diffs.clear();
        let mut any = 0u64;
        if site_diff != 0 {
            for (i, &net) in circuit.outputs().iter().enumerate() {
                if sim.disturbed(net) {
                    let d = sim.word(good, net, w) ^ good.word(net, w);
                    if d != 0 {
                        diffs.push((i, d));
                        any |= d;
                    }
                }
            }
        }
        if any == 0 && u_mask == 0 {
            continue;
        }
        for lane in 0..64 {
            let bit = 1u64 << lane;
            if tail & bit == 0 {
                break;
            }
            let t = w * 64 + lane;
            if u_mask & bit != 0 {
                // The tester observes an intermediate value: exact ternary
                // propagation of the `U` through the cone.
                let base = base_from_bits(circuit, good, t);
                let changed = sim.propagate_ternary(circuit, &base, &[(out_net, Lv::U)]);
                let failing: Vec<usize> = changed.iter().map(|&(i, _)| i).collect();
                if !failing.is_empty() {
                    entries.push(DatalogEntry {
                        pattern_index: t,
                        failing_outputs: failing,
                    });
                }
            } else if any & bit != 0 {
                let failing: Vec<usize> = diffs
                    .iter()
                    .filter(|&&(_, d)| d & bit != 0)
                    .map(|&(i, _)| i)
                    .collect();
                entries.push(DatalogEntry {
                    pattern_index: t,
                    failing_outputs: failing,
                });
            }
        }
    }
    sim.observe();

    Ok(Datalog {
        circuit_name: circuit.name().to_owned(),
        num_patterns: patterns.len(),
        entries,
    })
}

/// Applies an ordered pattern sequence to a circuit containing one
/// classical *net-level* fault (stuck-at, transition, bridging) and
/// records the datalog.
///
/// This is the tester model for defects that live **between** cells
/// (inter-cell defects, the paper's circuit-C silicon case): the faulty
/// net takes its corrupted value and the difference propagates to the
/// observe points. Net-level faults are always binary, so the whole test
/// runs 64 patterns per word on the event-driven kernel. Flushes the
/// `eventsim.*` counters on completion.
///
/// # Errors
///
/// Returns an error when patterns are malformed.
pub fn run_test_gate_fault(
    circuit: &Circuit,
    patterns: &[Pattern],
    fault: &crate::GateFault,
) -> Result<Datalog, FaultSimError> {
    let good = good_simulate(circuit, patterns)?;
    let mut sim = EventSim::new(circuit)?;
    let site = fault.site();
    let mut entries = Vec::new();
    let mut diffs: Vec<(usize, u64)> = Vec::new();
    for w in 0..good.words_per_net() {
        let site_diff =
            sim.propagate_word(circuit, &good, w, site, faulty_site_word(&good, fault, w));
        if site_diff == 0 {
            continue;
        }
        diffs.clear();
        let mut any = 0u64;
        for (i, &net) in circuit.outputs().iter().enumerate() {
            if sim.disturbed(net) {
                let d = sim.word(&good, net, w) ^ good.word(net, w);
                if d != 0 {
                    diffs.push((i, d));
                    any |= d;
                }
            }
        }
        let mut lanes = any;
        while lanes != 0 {
            let lane = lanes.trailing_zeros() as usize;
            lanes &= lanes - 1;
            let failing: Vec<usize> = diffs
                .iter()
                .filter(|&&(_, d)| d & (1u64 << lane) != 0)
                .map(|&(i, _)| i)
                .collect();
            entries.push(DatalogEntry {
                pattern_index: w * 64 + lane,
                failing_outputs: failing,
            });
        }
    }
    sim.observe();
    Ok(Datalog {
        circuit_name: circuit.name().to_owned(),
        num_patterns: patterns.len(),
        entries,
    })
}

/// Applies an ordered pattern sequence to a circuit containing *several*
/// simultaneously faulty cells — the multiple-defect regime, with **no
/// assumption on how failing patterns distribute over the defects**.
///
/// Unlike [`run_test`], each pattern is evaluated serially (exact
/// three-valued semantics), but *event-driven*: every faulty cell is
/// seeded into a level-ordered frontier and only the gates its divergence
/// reaches are re-evaluated over the good machine, so interacting defects
/// — one faulty cell inside another's input cone — are handled exactly
/// while untouched regions of the circuit are never visited. Charge
/// retention uses each faulty cell's own previous output in the faulty
/// machine. [`run_test_multi_full`] walks the full topology and is the
/// differential oracle for this function. Emits the `eventsim.*`
/// counters.
///
/// # Errors
///
/// Returns an error when patterns are malformed, a model's arity
/// mismatches its gate, or two models target the same gate.
pub fn run_test_multi(
    circuit: &Circuit,
    patterns: &[Pattern],
    faulty: &[FaultyGate],
) -> Result<Datalog, FaultSimError> {
    let good = good_simulate(circuit, patterns)?;
    let by_gate = index_faulty_gates(circuit, faulty)?;

    let mut entries = Vec::new();
    // Faulty-machine state: previous inputs and output per faulty gate.
    let mut prev_in: std::collections::HashMap<usize, Vec<bool>> = Default::default();
    let mut prev_out: std::collections::HashMap<usize, Lv> = Default::default();

    // Event scratch: per-net overlay of faulty-machine values that differ
    // from the good machine, stamped per pattern; per-level worklists.
    let num_nets = circuit.num_nets();
    let mut overlay = vec![Lv::U; num_nets];
    let mut net_stamp = vec![0u32; num_nets];
    let mut gate_stamp = vec![0u32; circuit.num_gates()];
    let mut stamp = 0u32;
    let mut buckets: Vec<Vec<GateId>> = vec![Vec::new(); circuit.max_level() as usize + 1];
    let mut gates_evaluated = 0u64;
    let mut early_exits = 0u64;
    let mut ins_lv: Vec<Lv> = Vec::with_capacity(8);

    for t in 0..patterns.len() {
        if stamp == u32::MAX {
            net_stamp.fill(0);
            gate_stamp.fill(0);
            stamp = 1;
        } else {
            stamp += 1;
        }
        let mut any_overlay = false;
        // Seed every faulty cell: its output may diverge on any pattern,
        // and its retention state must advance even when it does not.
        for f in faulty {
            if gate_stamp[f.gate.index()] != stamp {
                gate_stamp[f.gate.index()] = stamp;
                buckets[circuit.gate_level(f.gate) as usize].push(f.gate);
            }
        }
        let mut level = 0;
        while level < buckets.len() {
            if buckets[level].is_empty() {
                level += 1;
                continue;
            }
            // New events only land on strictly greater levels, so the
            // taken bucket cannot grow while it drains.
            let mut bucket = std::mem::take(&mut buckets[level]);
            for &gate in &bucket {
                gates_evaluated += 1;
                ins_lv.clear();
                for &n in circuit.gate_inputs(gate) {
                    ins_lv.push(if net_stamp[n.index()] == stamp {
                        overlay[n.index()]
                    } else {
                        Lv::from(good.value(n, t))
                    });
                }
                let out = circuit.gate_output(gate);
                let v = match by_gate.get(&gate.index()) {
                    // Arity is checked at circuit construction; the
                    // graceful fallback (treat an eval failure as arity
                    // mismatch) keeps the tester path panic-free.
                    None => circuit.gate_type(gate).table().eval(&ins_lv).map_err(|_| {
                        FaultSimError::WrongFaultArity {
                            expected: circuit.gate_type(gate).num_inputs(),
                            got: ins_lv.len(),
                        }
                    })?,
                    Some(f) => {
                        // Unknown faulty-machine inputs are pessimistically
                        // resolved to the good value for the behaviour
                        // lookup.
                        let cur: Vec<bool> = circuit
                            .gate_inputs(gate)
                            .iter()
                            .zip(ins_lv.iter())
                            .map(|(&n, &v)| v.to_bool().unwrap_or(good.value(n, t)))
                            .collect();
                        let prev = prev_in
                            .get(&gate.index())
                            .cloned()
                            .unwrap_or_else(|| cur.clone());
                        let po = prev_out
                            .get(&gate.index())
                            .copied()
                            .unwrap_or(Lv::from(good.value(out, t)));
                        let v = f.behavior.eval(&prev, &cur, po);
                        prev_in.insert(gate.index(), cur);
                        prev_out.insert(gate.index(), v);
                        v
                    }
                };
                if v != Lv::from(good.value(out, t)) {
                    overlay[out.index()] = v;
                    net_stamp[out.index()] = stamp;
                    any_overlay = true;
                    for &g in circuit.fanout(out) {
                        if gate_stamp[g.index()] != stamp {
                            gate_stamp[g.index()] = stamp;
                            buckets[circuit.gate_level(g) as usize].push(g);
                        }
                    }
                }
            }
            bucket.clear();
            buckets[level] = bucket;
            level += 1;
        }
        if !any_overlay {
            early_exits += 1;
            continue;
        }
        // Overlays are written only when they differ from the good value,
        // so a live stamp is exactly a miscompare.
        let failing: Vec<usize> = circuit
            .outputs()
            .iter()
            .enumerate()
            .filter(|&(_, &net)| net_stamp[net.index()] == stamp)
            .map(|(i, _)| i)
            .collect();
        if !failing.is_empty() {
            entries.push(DatalogEntry {
                pattern_index: t,
                failing_outputs: failing,
            });
        }
    }
    icd_obs::counter(
        "eventsim.gates_evaluated",
        gates_evaluated,
        icd_obs::Stability::Stable,
    );
    icd_obs::counter(
        "eventsim.early_exits",
        early_exits,
        icd_obs::Stability::Stable,
    );

    Ok(Datalog {
        circuit_name: circuit.name().to_owned(),
        num_patterns: patterns.len(),
        entries,
    })
}

/// Validates arities and uniqueness of the faulty-gate set and indexes it
/// by gate.
fn index_faulty_gates<'a>(
    circuit: &Circuit,
    faulty: &'a [FaultyGate],
) -> Result<std::collections::HashMap<usize, &'a FaultyGate>, FaultSimError> {
    let mut by_gate: std::collections::HashMap<usize, &FaultyGate> = Default::default();
    for f in faulty {
        let expected = circuit.gate_type(f.gate).num_inputs();
        if f.behavior.inputs() != expected {
            return Err(FaultSimError::WrongFaultArity {
                expected,
                got: f.behavior.inputs(),
            });
        }
        if by_gate.insert(f.gate.index(), f).is_some() {
            return Err(FaultSimError::WrongFaultArity {
                expected,
                got: expected,
            });
        }
    }
    Ok(by_gate)
}

/// The full-topology differential oracle for [`run_test_multi`]: walks
/// every gate of the circuit per pattern instead of only the divergence
/// frontier. Byte-identical to the event-driven path by construction; the
/// differential suites hold the two together.
///
/// # Errors
///
/// Same contract as [`run_test_multi`].
pub fn run_test_multi_full(
    circuit: &Circuit,
    patterns: &[Pattern],
    faulty: &[FaultyGate],
) -> Result<Datalog, FaultSimError> {
    let good = good_simulate(circuit, patterns)?;
    let by_gate = index_faulty_gates(circuit, faulty)?;

    let mut entries = Vec::new();
    // Faulty-machine state: previous inputs and output per faulty gate.
    let mut prev_in: std::collections::HashMap<usize, Vec<bool>> = Default::default();
    let mut prev_out: std::collections::HashMap<usize, Lv> = Default::default();

    let mut values = vec![Lv::U; circuit.num_nets()];
    for (t, pattern) in patterns.iter().enumerate() {
        for (i, &net) in circuit.inputs().iter().enumerate() {
            values[net.index()] = pattern[i];
        }
        let mut ins_lv: Vec<Lv> = Vec::with_capacity(8);
        for &gate in circuit.topo_order() {
            ins_lv.clear();
            ins_lv.extend(circuit.gate_inputs(gate).iter().map(|&n| values[n.index()]));
            let out = circuit.gate_output(gate);
            values[out.index()] = match by_gate.get(&gate.index()) {
                // Arity is checked at circuit construction; the graceful
                // fallback (treat an eval failure as arity mismatch) keeps
                // the tester path panic-free.
                None => circuit.gate_type(gate).table().eval(&ins_lv).map_err(|_| {
                    FaultSimError::WrongFaultArity {
                        expected: circuit.gate_type(gate).num_inputs(),
                        got: ins_lv.len(),
                    }
                })?,
                Some(f) => {
                    // Unknown faulty-machine inputs are pessimistically
                    // resolved to the good value for the behaviour lookup.
                    let cur: Vec<bool> = circuit
                        .gate_inputs(gate)
                        .iter()
                        .zip(ins_lv.iter())
                        .map(|(&n, &v)| v.to_bool().unwrap_or(good.value(n, t)))
                        .collect();
                    let prev = prev_in
                        .get(&gate.index())
                        .cloned()
                        .unwrap_or_else(|| cur.clone());
                    let po = prev_out
                        .get(&gate.index())
                        .copied()
                        .unwrap_or(Lv::from(good.value(out, t)));
                    let v = f.behavior.eval(&prev, &cur, po);
                    prev_in.insert(gate.index(), cur);
                    prev_out.insert(gate.index(), v);
                    v
                }
            };
        }
        let failing: Vec<usize> = circuit
            .outputs()
            .iter()
            .enumerate()
            .filter(|&(_, &net)| values[net.index()] != Lv::from(good.value(net, t)))
            .map(|(i, _)| i)
            .collect();
        if !failing.is_empty() {
            entries.push(DatalogEntry {
                pattern_index: t,
                failing_outputs: failing,
            });
        }
    }

    Ok(Datalog {
        circuit_name: circuit.name().to_owned(),
        num_patterns: patterns.len(),
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayTable, FaultyBehavior};
    use icd_logic::TruthTable;
    use icd_netlist::{CircuitBuilder, GateType, Library};

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new("AND2", ["A", "B"], TruthTable::from_fn(2, |b| b[0] & b[1])).unwrap(),
        )
        .unwrap();
        lib
    }

    /// y0 = a & b ; y1 = !(a & b)
    fn circuit(lib: &Library) -> (Circuit, icd_netlist::GateId) {
        let mut bld = CircuitBuilder::new("c", lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let m = bld.add_gate("AND2", &[a, b], Some("U1")).unwrap();
        let n = bld.add_gate("INV", &[m], None).unwrap();
        bld.mark_output(m, "y0");
        bld.mark_output(n, "y1");
        let c = bld.finish().unwrap();
        let g = c.find_gate("U1").unwrap();
        (c, g)
    }

    #[test]
    fn stuck_output_produces_expected_datalog() {
        let lib = lib();
        let (c, g) = circuit(&lib);
        // AND gate output stuck at 0.
        let faulty = FaultyGate::new(g, FaultyBehavior::Static(TruthTable::from_fn(2, |_| false)));
        let pats: Vec<Pattern> = ["00", "11", "01", "11"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let log = run_test(&c, &pats, &faulty).unwrap();
        // Fails exactly on patterns where a&b = 1: indices 1 and 3, on both
        // observe points.
        assert_eq!(log.failing_pattern_indices(), vec![1, 3]);
        assert_eq!(log.entries[0].failing_outputs.len(), 2);
        assert_eq!(log.passing_pattern_indices(), vec![0, 2]);
    }

    #[test]
    fn benign_model_yields_all_pass() {
        let lib = lib();
        let (c, g) = circuit(&lib);
        let faulty = FaultyGate::new(
            g,
            FaultyBehavior::Static(TruthTable::from_fn(2, |b| b[0] & b[1])),
        );
        let pats: Vec<Pattern> = ["00", "11"].iter().map(|s| s.parse().unwrap()).collect();
        let log = run_test(&c, &pats, &faulty).unwrap();
        assert!(log.all_pass());
    }

    #[test]
    fn delay_behavior_fails_only_on_transitions() {
        let lib = lib();
        let (c, g) = circuit(&lib);
        let good = TruthTable::from_fn(2, |b| b[0] & b[1]);
        // Slow output cell: late value = previous steady value.
        let good2 = good.clone();
        let table = DelayTable::from_fn(2, move |prev, cur| {
            let old = good2.eval_bits(prev);
            let new = good2.eval_bits(cur);
            if old.conflicts_with(new) {
                old
            } else {
                new
            }
        });
        let faulty = FaultyGate::new(g, FaultyBehavior::Delay(table));
        // Sequence: 00 (y=0), 11 (rise -> late 0: FAIL), 11 (stable: pass),
        // 01 (fall -> late 1: FAIL), 01 (stable: pass).
        let pats: Vec<Pattern> = ["00", "11", "11", "10", "10"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let log = run_test(&c, &pats, &faulty).unwrap();
        assert_eq!(log.failing_pattern_indices(), vec![1, 3]);
    }

    #[test]
    fn charge_retention_makes_stuck_open_two_pattern_dependent() {
        let lib = lib();
        let (c, g) = circuit(&lib);
        // Cell floats when a=b=1 (like an open pull-up path).
        let table = TruthTable::from_entries(2, vec![Lv::Zero, Lv::Zero, Lv::Zero, Lv::U]).unwrap();
        let faulty = FaultyGate::new(g, FaultyBehavior::Static(table));
        // 00 -> y good 0, retained 0; 11 -> good 1, floating retains 0: FAIL.
        // Then 11 again: still retains 0: FAIL again.
        let pats: Vec<Pattern> = ["00", "11", "11"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let log = run_test(&c, &pats, &faulty).unwrap();
        assert_eq!(log.failing_pattern_indices(), vec![1, 2]);
    }

    #[test]
    fn net_level_fault_produces_expected_datalog() {
        let lib = lib();
        let (c, g) = circuit(&lib);
        let m = c.gate_output(g);
        // m stuck-at-1: fails wherever a&b = 0 (all but pattern 11).
        let fault = crate::GateFault::stuck_at(m, true);
        let pats: Vec<Pattern> = ["00", "11", "01"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let log = run_test_gate_fault(&c, &pats, &fault).unwrap();
        assert_eq!(log.failing_pattern_indices(), vec![0, 2]);
        // Bridging: y0 victim, a aggressor.
        let a = c.inputs()[0];
        let log = run_test_gate_fault(
            &c,
            &pats,
            &crate::GateFault::Bridging {
                victim: m,
                aggressor: a,
            },
        )
        .unwrap();
        // Fails where a != a&b, i.e. a=1, b=0 (pattern "01" is a=0,b=1 ->
        // 0 vs 0 pass; "10"? not applied). Here: none of 00/11; "01" has
        // a=0,b=1: a&b=0 == a=0: pass.
        assert!(log.all_pass());
    }

    #[test]
    fn multi_defect_datalog_unions_single_defect_logs() {
        // Two defective cells in disjoint cones: the multi-defect datalog
        // is the per-pattern union of the single-defect datalogs.
        let lib = lib();
        let mut bld = CircuitBuilder::new("c", &lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let c = bld.add_input("c");
        let d = bld.add_input("d");
        let m1 = bld.add_gate("AND2", &[a, b], Some("U1")).unwrap();
        let m2 = bld.add_gate("AND2", &[c, d], Some("U2")).unwrap();
        bld.mark_output(m1, "y1");
        bld.mark_output(m2, "y2");
        let circ = bld.finish().unwrap();
        let g1 = circ.find_gate("U1").unwrap();
        let g2 = circ.find_gate("U2").unwrap();

        let stuck1 = FaultyGate::new(g1, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let stuck0 = FaultyGate::new(
            g2,
            FaultyBehavior::Static(TruthTable::from_fn(2, |_| false)),
        );
        let pats: Vec<Pattern> = (0..16)
            .map(|i| Pattern::from_bits((0..4).map(move |k| (i >> k) & 1 == 1)))
            .collect();
        let log1 = run_test(&circ, &pats, &stuck1).unwrap();
        let log2 = run_test(&circ, &pats, &stuck0).unwrap();
        let multi = run_test_multi(&circ, &pats, &[stuck1.clone(), stuck0.clone()]).unwrap();

        let mut union: std::collections::BTreeMap<usize, std::collections::BTreeSet<usize>> =
            Default::default();
        for e in log1.entries.iter().chain(log2.entries.iter()) {
            union
                .entry(e.pattern_index)
                .or_default()
                .extend(e.failing_outputs.iter().copied());
        }
        assert_eq!(multi.entries.len(), union.len());
        for e in &multi.entries {
            let want = &union[&e.pattern_index];
            let got: std::collections::BTreeSet<usize> =
                e.failing_outputs.iter().copied().collect();
            assert_eq!(&got, want, "pattern {}", e.pattern_index);
        }
    }

    #[test]
    fn multi_defect_handles_overlapping_cones() {
        // U2 consumes U1's output: the faulty machine must feed U2 the
        // *faulty* value of U1, not the good one.
        let lib = lib();
        let mut bld = CircuitBuilder::new("c", &lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let m1 = bld.add_gate("AND2", &[a, b], Some("U1")).unwrap();
        let m2 = bld.add_gate("INV", &[m1], Some("U2")).unwrap();
        bld.mark_output(m2, "y");
        let circ = bld.finish().unwrap();
        let g1 = circ.find_gate("U1").unwrap();
        let g2 = circ.find_gate("U2").unwrap();
        // U1 output stuck at 1, U2 behaves as a buffer instead of an
        // inverter: y = 1 always in the faulty machine.
        let f1 = FaultyGate::new(g1, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let f2 = FaultyGate::new(g2, FaultyBehavior::Static(TruthTable::from_fn(1, |i| i[0])));
        let pats: Vec<Pattern> = ["00", "11"].iter().map(|s| s.parse().unwrap()).collect();
        let log = run_test_multi(&circ, &pats, &[f1, f2]).unwrap();
        // Good y: 1, 0. Faulty y: 1, 1. Only pattern 1 fails.
        assert_eq!(log.failing_pattern_indices(), vec![1]);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let lib = lib();
        let (c, g) = circuit(&lib);
        let faulty = FaultyGate::new(g, FaultyBehavior::Static(TruthTable::from_fn(1, |b| b[0])));
        let err = run_test(&c, &["00".parse().unwrap()], &faulty);
        assert!(matches!(err, Err(FaultSimError::WrongFaultArity { .. })));
    }
}
