//! Inter-cell (gate-level) diagnosis and local pattern extraction.
//!
//! The paper's flow (Fig. 2) relies on a logic-level diagnosis front end
//! ("any available commercial diagnosis tool can be adopted") to reduce the
//! circuit to a handful of *suspected gates*, and on a *DUT simulation*
//! step that derives, for each suspected gate, the local failing and
//! passing patterns the intra-cell engine consumes. This crate provides
//! both:
//!
//! * [`gate_cpt`] — classical critical path tracing at gate level
//!   (Abramovici-style, as in the paper's reference \[2\]): from a failing
//!   output, trace back critical nets through critical gate inputs.
//! * [`diagnose`] — effect-cause candidate extraction and ranking. Each
//!   failing pattern contributes the gates on its critical paths;
//!   candidates are scored by explained failing patterns and contradicted
//!   passing patterns, and a greedy set cover selects a *multiplet* of
//!   candidates that together explain every failing pattern — without any
//!   assumption on how failing patterns distribute over defects (the
//!   multiple-defect, no-assumptions regime).
//! * [`extract_local_patterns`] — the DUT-simulation step: local failing
//!   patterns from the datalog, local passing patterns filtered by an
//!   observability check (a fault effect at the suspected gate's output
//!   must reach an observe point), plus the Fig.-4 taxonomy
//!   ([`LocalPatterns::taxonomy`]): `lfp ∩ lpp ≠ ∅` proves the defect is
//!   dynamic.
//!
//! # Example
//!
//! ```
//! use icd_cells::CellLibrary;
//! use icd_faultsim::{enumerate_stuck_at, run_test_gate_fault};
//! use icd_intercell::{diagnose, extract_local_patterns};
//! use icd_netlist::generator;
//!
//! // A small synthetic circuit with a random test set.
//! let library = CellLibrary::standard().logic_library();
//! let circuit = generator::generate(&generator::circuit_a().scaled_down(8), &library)?;
//! let patterns = icd_atpg::random_patterns(&circuit, 32, 7);
//!
//! // Emulate the tester: the first stuck-at fault the test set detects.
//! let datalog = enumerate_stuck_at(&circuit)
//!     .iter()
//!     .filter_map(|fault| run_test_gate_fault(&circuit, &patterns, fault).ok())
//!     .find(|datalog| !datalog.all_pass())
//!     .expect("some stuck fault is detected");
//!
//! // Effect-cause diagnosis, then local patterns per suspected gate.
//! let result = diagnose(&circuit, &patterns, &datalog)?;
//! assert!(!result.multiplet.is_empty());
//! for &gate in &result.multiplet {
//!     let local = extract_local_patterns(&circuit, &patterns, &datalog, gate)?;
//!     println!("{}: {} lfp / {} lpp", circuit.gate_name(gate), local.lfp.len(), local.lpp.len());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]
#![warn(missing_docs)]

mod cpt;
mod diagnose;
mod error;
mod local;

pub use cpt::{gate_cpt, gate_cpt_exact};
pub use diagnose::{
    diagnose, diagnose_with_good, diagnose_with_options, DiagnoseOptions, GateCandidate,
    IntercellDiagnosis,
};
pub use error::IntercellError;
pub use local::{
    extract_local_patterns, extract_local_patterns_with_good, DefectClassHint, LocalPattern,
    LocalPatterns,
};
