use icd_faultsim::{good_simulate, Datalog, DiffPropagator};
use icd_logic::{Lv, Pattern};
use icd_netlist::{Circuit, GateId, NetId};

use crate::IntercellError;

/// The values a suspected gate sees under one circuit pattern: the current
/// cell-input vector and the previous one (needed for dynamic faulty
/// behaviours, §3.1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalPattern {
    /// Index of the circuit pattern this local pattern was extracted from.
    pub pattern_index: usize,
    /// Cell-input values under this pattern, in pin order.
    pub inputs: Vec<bool>,
    /// Cell-input values under the previous pattern (equal to `inputs` for
    /// the first pattern of the sequence).
    pub previous: Vec<bool>,
}

/// Fig.-4 taxonomy verdict for a suspected gate's local patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefectClassHint {
    /// `lfp ∩ lpp = ∅` (Definition 4): both static and dynamic faulty
    /// behaviours can be the root cause.
    StaticOrDynamic,
    /// `lfp ∩ lpp ≠ ∅` (Definition 3): the same local vector both failed
    /// and passed, so only a dynamic (delay) faulty behaviour is possible;
    /// static models are discarded.
    DynamicOnly,
}

/// The DUT-simulation result for one suspected gate: its local failing and
/// local passing patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalPatterns {
    /// The suspected gate.
    pub gate: GateId,
    /// Local failing patterns (Definition 1).
    pub lfp: Vec<LocalPattern>,
    /// Local passing patterns (Definition 2) — passing circuit patterns
    /// under which a fault effect at the gate output would have been
    /// observed.
    pub lpp: Vec<LocalPattern>,
}

impl LocalPatterns {
    /// The Fig.-4 classification: if some local input vector appears both
    /// as failing and as passing, the defect must be dynamic.
    pub fn taxonomy(&self) -> DefectClassHint {
        let failing: std::collections::HashSet<&[bool]> =
            self.lfp.iter().map(|p| p.inputs.as_slice()).collect();
        if self
            .lpp
            .iter()
            .any(|p| failing.contains(p.inputs.as_slice()))
        {
            DefectClassHint::DynamicOnly
        } else {
            DefectClassHint::StaticOrDynamic
        }
    }
}

/// The DUT-simulation step (paper §3.1): derives the local failing and
/// passing patterns of one suspected gate.
///
/// * every failing pattern of the datalog contributes its local vector to
///   `lfp` (the fault inside the gate *was* excited and observed);
/// * a passing pattern contributes to `lpp` only if a fault effect at the
///   gate's output would have propagated to at least one observe point —
///   the observability check that distinguishes "fault not sensitized"
///   from "fault effect masked".
///
/// # Errors
///
/// Returns an error when the datalog references unknown patterns or the
/// patterns are malformed.
pub fn extract_local_patterns(
    circuit: &Circuit,
    patterns: &[Pattern],
    datalog: &Datalog,
    gate: GateId,
) -> Result<LocalPatterns, IntercellError> {
    let good = good_simulate(circuit, patterns)?;
    extract_local_patterns_with_good(circuit, patterns, datalog, gate, &good)
}

/// [`extract_local_patterns`] variant reusing a precomputed good
/// simulation.
///
/// # Errors
///
/// Same as [`extract_local_patterns`].
pub fn extract_local_patterns_with_good(
    circuit: &Circuit,
    patterns: &[Pattern],
    datalog: &Datalog,
    gate: GateId,
    good: &icd_faultsim::BitValues,
) -> Result<LocalPatterns, IntercellError> {
    let out = circuit.gate_output(gate);

    let local_at = |t: usize| -> Vec<bool> { good.gate_input_bits(circuit, gate, t) };

    // Observe points structurally reachable from the gate's output: a
    // failure elsewhere cannot have been caused by this gate. Under the
    // single-defect assumption every datalog entry fails inside the
    // suspected gate's cone anyway; with multiple simultaneous defects
    // this filter keeps the other defects' failures from polluting this
    // gate's local failing set.
    let reachable_outputs = {
        let mut in_cone = vec![false; circuit.num_nets()];
        in_cone[out.index()] = true;
        let mut stack = vec![out];
        while let Some(net) = stack.pop() {
            for &g in circuit.fanout(net) {
                let o = circuit.gate_output(g);
                if !in_cone[o.index()] {
                    in_cone[o.index()] = true;
                    stack.push(o);
                }
            }
        }
        let set: std::collections::HashSet<usize> = circuit
            .outputs()
            .iter()
            .enumerate()
            .filter(|&(_, &n)| in_cone[n.index()])
            .map(|(i, _)| i)
            .collect();
        set
    };

    let mut lfp = Vec::new();
    // Failing patterns whose failures are all outside the cone behave as
    // *passing* from this gate's point of view (subject to the
    // observability check below).
    let mut locally_passing: Vec<usize> = Vec::new();
    for entry in &datalog.entries {
        let t = entry.pattern_index;
        if t >= patterns.len() {
            return Err(IntercellError::BadPatternIndex(t));
        }
        if entry
            .failing_outputs
            .iter()
            .any(|o| reachable_outputs.contains(o))
        {
            lfp.push(LocalPattern {
                pattern_index: t,
                inputs: local_at(t),
                previous: local_at(t.saturating_sub(1)),
            });
        } else {
            locally_passing.push(t);
        }
    }

    let mut lpp = Vec::new();
    let mut propagator = DiffPropagator::new(circuit);
    let mut passing: Vec<usize> = datalog.passing_pattern_indices();
    passing.extend(locally_passing);
    passing.sort_unstable();
    for t in passing {
        if t >= patterns.len() {
            return Err(IntercellError::BadPatternIndex(t));
        }
        let base: Vec<Lv> = (0..circuit.num_nets())
            .map(|i| Lv::from(good.value(NetId::from_index(i), t)))
            .collect();
        let flipped = !base[out.index()];
        let changed = propagator.propagate(circuit, &base, &[(out, flipped)]);
        if !changed.is_empty() {
            lpp.push(LocalPattern {
                pattern_index: t,
                inputs: local_at(t),
                previous: local_at(t.saturating_sub(1)),
            });
        }
    }

    Ok(LocalPatterns { gate, lfp, lpp })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_faultsim::DatalogEntry;
    use icd_logic::TruthTable;
    use icd_netlist::{CircuitBuilder, GateType, Library};

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new("AND2", ["A", "B"], TruthTable::from_fn(2, |b| b[0] & b[1])).unwrap(),
        )
        .unwrap();
        lib
    }

    /// z = (a & b) & c — the AND2 U1 feeds another AND2, so U1's output is
    /// observable only when c = 1.
    fn circuit(lib: &Library) -> (Circuit, GateId) {
        let mut bld = CircuitBuilder::new("c", lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let c = bld.add_input("c");
        let m = bld.add_gate("AND2", &[a, b], Some("U1")).unwrap();
        let z = bld.add_gate("AND2", &[m, c], Some("U2")).unwrap();
        bld.mark_output(z, "z");
        let circ = bld.finish().unwrap();
        let g = circ.find_gate("U1").unwrap();
        (circ, g)
    }

    #[test]
    fn lfp_comes_from_datalog_and_lpp_respects_observability() {
        let lib = lib();
        let (c, u1) = circuit(&lib);
        // Patterns: abc.
        let pats: Vec<Pattern> = ["111", "110", "011", "010"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        // Say pattern 0 failed.
        let log = Datalog {
            circuit_name: "c".into(),
            num_patterns: pats.len(),
            entries: vec![DatalogEntry {
                pattern_index: 0,
                failing_outputs: vec![0],
            }],
        };
        let local = extract_local_patterns(&c, &pats, &log, u1).unwrap();
        assert_eq!(local.lfp.len(), 1);
        assert_eq!(local.lfp[0].inputs, vec![true, true]);
        // Passing patterns: 1 (110: c=0, NOT observable), 2 (011:
        // observable), 3 (010: c=0, not observable).
        assert_eq!(local.lpp.len(), 1);
        assert_eq!(local.lpp[0].pattern_index, 2);
        assert_eq!(local.lpp[0].inputs, vec![false, true]);
        assert_eq!(local.taxonomy(), DefectClassHint::StaticOrDynamic);
    }

    #[test]
    fn previous_vector_is_the_preceding_pattern() {
        let lib = lib();
        let (c, u1) = circuit(&lib);
        let pats: Vec<Pattern> = ["011", "111"].iter().map(|s| s.parse().unwrap()).collect();
        let log = Datalog {
            circuit_name: "c".into(),
            num_patterns: pats.len(),
            entries: vec![DatalogEntry {
                pattern_index: 1,
                failing_outputs: vec![0],
            }],
        };
        let local = extract_local_patterns(&c, &pats, &log, u1).unwrap();
        assert_eq!(local.lfp[0].previous, vec![false, true]);
        assert_eq!(local.lfp[0].inputs, vec![true, true]);
    }

    #[test]
    fn same_vector_failing_and_passing_is_dynamic_only() {
        let lib = lib();
        let (c, u1) = circuit(&lib);
        // Same local vector (a=1,b=1,c=1) fails once and passes once: the
        // Definition-3 situation of a delay defect.
        let pats: Vec<Pattern> = ["011", "111", "111"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let log = Datalog {
            circuit_name: "c".into(),
            num_patterns: pats.len(),
            entries: vec![DatalogEntry {
                pattern_index: 1,
                failing_outputs: vec![0],
            }],
        };
        let local = extract_local_patterns(&c, &pats, &log, u1).unwrap();
        assert_eq!(local.taxonomy(), DefectClassHint::DynamicOnly);
    }
}
