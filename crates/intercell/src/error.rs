use std::error::Error;
use std::fmt;

use icd_faultsim::FaultSimError;

/// Errors produced by inter-cell diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntercellError {
    /// The underlying simulation failed.
    Simulation(FaultSimError),
    /// The datalog references a pattern index outside the applied set.
    BadPatternIndex(usize),
    /// The datalog references an observe-point index outside the circuit's
    /// output list.
    BadOutputIndex(usize),
}

impl fmt::Display for IntercellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntercellError::Simulation(e) => write!(f, "simulation failed: {e}"),
            IntercellError::BadPatternIndex(t) => {
                write!(f, "datalog references pattern {t} outside the applied set")
            }
            IntercellError::BadOutputIndex(i) => {
                write!(
                    f,
                    "datalog references output {i} outside the circuit interface"
                )
            }
        }
    }
}

impl Error for IntercellError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IntercellError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultSimError> for IntercellError {
    fn from(e: FaultSimError) -> Self {
        IntercellError::Simulation(e)
    }
}
