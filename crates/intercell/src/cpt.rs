use icd_faultsim::DiffPropagator;
use icd_logic::Lv;
use icd_netlist::{Circuit, NetId};

/// Classical critical path tracing at gate level.
///
/// Starting from `start` (typically a failing observe point), the trace
/// walks backwards: a gate input is *critical* when inverting its value
/// inverts the gate's output; every net reached through critical inputs is
/// critical and recursively traced until the primary inputs. This is the
/// paper's Fig.-5 procedure and the backbone of the inter-cell diagnosis
/// reference \[2\].
///
/// Fanout stems are handled with the standard single-path approximation: a
/// stem is critical when it is critical through at least one traced branch
/// (self-masking through reconvergence is not re-checked), which matches
/// the behaviour the paper relies on.
///
/// `base` holds the fault-free value of every net under the traced
/// pattern; inputs with unknown base values are never critical.
///
/// Returns the critical nets in trace order, starting with `start`.
pub fn gate_cpt(circuit: &Circuit, base: &[Lv], start: NetId) -> Vec<NetId> {
    let mut critical = vec![false; circuit.num_nets()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    critical[start.index()] = true;

    let mut ins: Vec<Lv> = Vec::with_capacity(8);
    while let Some(net) = stack.pop() {
        order.push(net);
        let Some(gate) = circuit.driver(net) else {
            continue; // primary input: the trace stops here
        };
        let table = circuit.gate_type(gate).table();
        let inputs = circuit.gate_inputs(gate);
        ins.clear();
        ins.extend(inputs.iter().map(|&n| base[n.index()]));
        let out = table.eval(&ins).expect("arity checked at construction");
        for (i, &input_net) in inputs.iter().enumerate() {
            let v = ins[i];
            if !v.is_known() {
                continue;
            }
            let saved = ins[i];
            ins[i] = !v;
            let flipped = table.eval(&ins).expect("arity checked at construction");
            ins[i] = saved;
            if flipped.conflicts_with(out) && !critical[input_net.index()] {
                critical[input_net.index()] = true;
                stack.push(input_net);
            }
        }
    }
    order
}

/// Exact variant of [`gate_cpt`]: every traced net is re-verified by
/// forward difference propagation — the net is kept only if actually
/// flipping it changes the traced observe point. This removes the
/// classical CPT false positives on self-masking reconvergent stems, at
/// the cost of one cone-bounded event-driven simulation per traced net.
///
/// `propagator` is reused across calls (see
/// [`DiffPropagator`]).
pub fn gate_cpt_exact(
    circuit: &Circuit,
    base: &[Lv],
    start: NetId,
    propagator: &mut DiffPropagator,
) -> Vec<NetId> {
    let approx = gate_cpt(circuit, base, start);
    approx
        .into_iter()
        .filter(|&net| {
            if net == start {
                return true;
            }
            let v = base[net.index()];
            if !v.is_known() {
                return false;
            }
            let changed = propagator.propagate(circuit, base, &[(net, !v)]);
            let start_pos = circuit.outputs().iter().position(|&o| o == start);
            match start_pos {
                // The traced point is an observe point: check it directly.
                Some(pos) => changed.iter().any(|&(i, _)| i == pos),
                // Otherwise check the effective value at the start net.
                None => propagator.effective(base, start) != base[start.index()],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_faultsim::ternary_simulate;
    use icd_logic::TruthTable;
    use icd_netlist::{CircuitBuilder, GateType, Library};

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new("AND2", ["A", "B"], TruthTable::from_fn(2, |b| b[0] & b[1])).unwrap(),
        )
        .unwrap();
        lib.insert(
            GateType::new("OR2", ["A", "B"], TruthTable::from_fn(2, |b| b[0] | b[1])).unwrap(),
        )
        .unwrap();
        lib
    }

    #[test]
    fn and_gate_sensitization() {
        // y = a & b under a=1, b=1: both inputs critical.
        let lib = lib();
        let mut bld = CircuitBuilder::new("c", &lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let y = bld.add_gate("AND2", &[a, b], None).unwrap();
        bld.mark_output(y, "y");
        let c = bld.finish().unwrap();
        let base = ternary_simulate(&c, &"11".parse().unwrap()).unwrap();
        let crit = gate_cpt(&c, &base, y);
        assert!(crit.contains(&a) && crit.contains(&b) && crit.contains(&y));

        // Under a=0, b=1: only a is critical (b is masked).
        let base = ternary_simulate(&c, &"01".parse().unwrap()).unwrap();
        let crit = gate_cpt(&c, &base, y);
        assert!(crit.contains(&a));
        assert!(!crit.contains(&b));
    }

    #[test]
    fn trace_descends_through_chains() {
        // y = !(a & b); chain INV(AND).
        let lib = lib();
        let mut bld = CircuitBuilder::new("c", &lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let m = bld.add_gate("AND2", &[a, b], None).unwrap();
        let y = bld.add_gate("INV", &[m], None).unwrap();
        bld.mark_output(y, "y");
        let c = bld.finish().unwrap();
        let base = ternary_simulate(&c, &"11".parse().unwrap()).unwrap();
        let crit = gate_cpt(&c, &base, y);
        assert_eq!(crit.len(), 4); // y, m, a, b
    }

    #[test]
    fn or_gate_with_two_controlling_inputs_has_no_critical_input() {
        // y = a | b under a=1, b=1: flipping either alone changes nothing.
        let lib = lib();
        let mut bld = CircuitBuilder::new("c", &lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let y = bld.add_gate("OR2", &[a, b], None).unwrap();
        bld.mark_output(y, "y");
        let c = bld.finish().unwrap();
        let base = ternary_simulate(&c, &"11".parse().unwrap()).unwrap();
        let crit = gate_cpt(&c, &base, y);
        assert_eq!(crit, vec![y]);
    }

    #[test]
    fn unknown_inputs_are_not_critical() {
        let lib = lib();
        let mut bld = CircuitBuilder::new("c", &lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let y = bld.add_gate("OR2", &[a, b], None).unwrap();
        bld.mark_output(y, "y");
        let c = bld.finish().unwrap();
        let base = ternary_simulate(&c, &"0U".parse().unwrap()).unwrap();
        let crit = gate_cpt(&c, &base, y);
        // Output U: flipping a known 0 input against a U output cannot be
        // decided -> only the start net is reported.
        assert_eq!(crit, vec![y]);
    }

    #[test]
    fn exact_variant_drops_self_masking_stem() {
        // y = (a & b) | (!a & b) == b: classical CPT flags the stem `a`
        // through the sensitized branch, exact verification removes it.
        let lib = lib();
        let mut bld = CircuitBuilder::new("c", &lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let an = bld.add_gate("INV", &[a], None).unwrap();
        let t1 = bld.add_gate("AND2", &[a, b], None).unwrap();
        let t2 = bld.add_gate("AND2", &[an, b], None).unwrap();
        let y = bld.add_gate("OR2", &[t1, t2], None).unwrap();
        bld.mark_output(y, "y");
        let c = bld.finish().unwrap();
        let base = ternary_simulate(&c, &"11".parse().unwrap()).unwrap();
        let approx = gate_cpt(&c, &base, y);
        assert!(approx.contains(&a), "approximate CPT flags the stem");
        let mut prop = icd_faultsim::DiffPropagator::new(&c);
        let exact = gate_cpt_exact(&c, &base, y, &mut prop);
        assert!(!exact.contains(&a), "exact CPT clears the stem");
        assert!(exact.contains(&b));
        assert!(exact.contains(&y));
        // Exact is always a subset of approximate.
        for net in &exact {
            assert!(approx.contains(net));
        }
    }

    #[test]
    fn reconvergent_stem_reported_via_branch() {
        // y = (a & b) | (!a & b) == b, reconvergence at the OR.
        let lib = lib();
        let mut bld = CircuitBuilder::new("c", &lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let an = bld.add_gate("INV", &[a], None).unwrap();
        let t1 = bld.add_gate("AND2", &[a, b], None).unwrap();
        let t2 = bld.add_gate("AND2", &[an, b], None).unwrap();
        let y = bld.add_gate("OR2", &[t1, t2], None).unwrap();
        bld.mark_output(y, "y");
        let c = bld.finish().unwrap();
        // a=1, b=1: t1=1 (critical path via t1), t2=0.
        let base = ternary_simulate(&c, &"11".parse().unwrap()).unwrap();
        let crit = gate_cpt(&c, &base, y);
        assert!(crit.contains(&t1));
        assert!(crit.contains(&b));
        // The single-path approximation also flags `a` through t1 even
        // though flipping the stem would be self-masked — the classical
        // CPT behaviour.
        assert!(crit.contains(&a));
    }
}
