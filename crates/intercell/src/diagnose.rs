use std::collections::HashMap;

use icd_faultsim::{good_simulate, Datalog, DiffPropagator};
use icd_logic::Lv;
use icd_netlist::{Circuit, GateId, NetId};

use crate::{gate_cpt, IntercellError};

/// How many passing patterns are examined per candidate when counting
/// contradictions; bounds the cost on long production test sets.
const MAX_PASSING_SAMPLE: usize = 32;

/// How many top candidates (by explained failing patterns) receive the
/// passing-pattern contradiction analysis; the long tail keeps a zero
/// count. Bounds the cost on multi-million-gate circuits where a failing
/// pattern's critical paths can cross thousands of gates.
const MAX_SCORED_CANDIDATES: usize = 64;

/// One ranked inter-cell candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCandidate {
    /// The suspected gate instance.
    pub gate: GateId,
    /// Failing patterns on whose critical paths the gate's output lies
    /// (type-1 evidence: "explains the failure").
    pub explained: Vec<usize>,
    /// Sampled passing patterns that contradict a single stuck-at defect at
    /// the gate output (the output was observable with the same good value
    /// as in the explained failures, yet the pattern passed).
    pub contradictions: usize,
    /// Whether the gate output held one consistent good value across all
    /// explained failing patterns (a single static culprit is plausible).
    pub consistent_static: bool,
}

impl GateCandidate {
    /// Ranking key: more explained failures first, fewer contradictions
    /// second.
    fn rank_key(&self) -> (usize, std::cmp::Reverse<usize>) {
        (self.explained.len(), std::cmp::Reverse(self.contradictions))
    }
}

/// The result of inter-cell diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub struct IntercellDiagnosis {
    /// All candidates, ranked best-first.
    pub candidates: Vec<GateCandidate>,
    /// A greedy set cover of the failing patterns: the smallest (greedily)
    /// group of gates that together explain every failing pattern. For a
    /// single defect this is one gate; for multiple simultaneous defects it
    /// names one gate per defect, with no assumption about which failing
    /// pattern belongs to which defect.
    pub multiplet: Vec<GateId>,
    /// Failing patterns no candidate explains (ideally empty).
    pub unexplained: Vec<usize>,
}

impl IntercellDiagnosis {
    /// The best single suspected gate, if any candidate exists.
    pub fn best(&self) -> Option<GateId> {
        self.candidates.first().map(|c| c.gate)
    }
}

/// Effect-cause inter-cell diagnosis: produces ranked suspected gates from
/// the circuit, the applied patterns and the tester datalog.
///
/// For every failing pattern, gate-level [`gate_cpt`] traces the critical
/// nets from each failing observe point; the drivers of those nets are the
/// pattern's candidates. Candidates are then scored against sampled passing
/// patterns and a greedy set cover produces the multiplet (see
/// [`IntercellDiagnosis`]).
///
/// # Errors
///
/// Returns an error when the datalog references unknown patterns or
/// outputs, or the patterns are malformed.
pub fn diagnose(
    circuit: &Circuit,
    patterns: &[icd_logic::Pattern],
    datalog: &Datalog,
) -> Result<IntercellDiagnosis, IntercellError> {
    let good = good_simulate(circuit, patterns)?;
    diagnose_with_good(circuit, patterns, datalog, &good)
}

/// [`diagnose`] variant reusing a precomputed good simulation — the fast
/// path when several diagnosis stages share one pattern set on a large
/// circuit.
///
/// # Errors
///
/// Same as [`diagnose`].
pub fn diagnose_with_good(
    circuit: &Circuit,
    patterns: &[icd_logic::Pattern],
    datalog: &Datalog,
    good: &icd_faultsim::BitValues,
) -> Result<IntercellDiagnosis, IntercellError> {
    // Phase 1: candidates from failing-pattern critical paths.
    let mut explained: HashMap<GateId, Vec<usize>> = HashMap::new();
    let mut fail_value: HashMap<GateId, Lv> = HashMap::new();
    let mut consistent: HashMap<GateId, bool> = HashMap::new();

    for entry in &datalog.entries {
        let t = entry.pattern_index;
        if t >= patterns.len() {
            return Err(IntercellError::BadPatternIndex(t));
        }
        let base: Vec<Lv> = (0..circuit.num_nets())
            .map(|i| Lv::from(good.value(NetId::from_index(i), t)))
            .collect();
        let mut seen_this_pattern: HashMap<GateId, ()> = HashMap::new();
        for &oi in &entry.failing_outputs {
            let &start = circuit
                .outputs()
                .get(oi)
                .ok_or(IntercellError::BadOutputIndex(oi))?;
            for net in gate_cpt(circuit, &base, start) {
                if let Some(gate) = circuit.driver(net) {
                    if seen_this_pattern.insert(gate, ()).is_none() {
                        explained.entry(gate).or_default().push(t);
                        let v = base[circuit.gate_output(gate).index()];
                        match fail_value.get(&gate) {
                            None => {
                                fail_value.insert(gate, v);
                                consistent.insert(gate, true);
                            }
                            Some(&prev) if prev == v => {}
                            Some(_) => {
                                consistent.insert(gate, false);
                            }
                        }
                    }
                }
            }
        }
    }

    // Phase 2: contradiction count against sampled passing patterns.
    let passing = datalog.passing_pattern_indices();
    let sample: Vec<usize> = passing
        .iter()
        .copied()
        .take(MAX_PASSING_SAMPLE)
        .collect();
    let mut propagator = DiffPropagator::new(circuit);
    let mut sample_bases: Vec<(usize, Vec<Lv>)> = Vec::with_capacity(sample.len());
    for &t in &sample {
        let base: Vec<Lv> = (0..circuit.num_nets())
            .map(|i| Lv::from(good.value(NetId::from_index(i), t)))
            .collect();
        sample_bases.push((t, base));
    }

    // Preliminary ranking by explained failures; only the head of the
    // list gets the (cone-bounded but non-trivial) contradiction scoring.
    let mut candidates: Vec<GateCandidate> = explained
        .into_iter()
        .map(|(gate, explained)| GateCandidate {
            gate,
            explained,
            contradictions: 0,
            consistent_static: consistent.get(&gate).copied().unwrap_or(false),
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.explained
            .len()
            .cmp(&a.explained.len())
            .then(a.gate.cmp(&b.gate))
    });
    for candidate in candidates.iter_mut().take(MAX_SCORED_CANDIDATES) {
        if !candidate.consistent_static {
            continue;
        }
        let out = circuit.gate_output(candidate.gate);
        let fail_v = fail_value[&candidate.gate];
        for (_, base) in &sample_bases {
            // If the defect were the stuck-at that explains the failures,
            // a passing pattern with the same good value and an observable
            // output would have failed too.
            if base[out.index()] == fail_v {
                let changed = propagator.propagate(circuit, base, &[(out, !fail_v)]);
                if !changed.is_empty() {
                    candidate.contradictions += 1;
                }
            }
        }
    }

    candidates.sort_by(|a, b| {
        b.rank_key()
            .cmp(&a.rank_key())
            .then(a.gate.cmp(&b.gate))
    });

    // Phase 3: greedy set cover over failing patterns.
    let failing: Vec<usize> = datalog.failing_pattern_indices();
    let mut uncovered: std::collections::HashSet<usize> = failing.iter().copied().collect();
    let mut multiplet = Vec::new();
    while !uncovered.is_empty() {
        let best = candidates
            .iter()
            .filter(|c| !multiplet.contains(&c.gate))
            .max_by_key(|c| {
                (
                    c.explained.iter().filter(|t| uncovered.contains(t)).count(),
                    std::cmp::Reverse(c.contradictions),
                    std::cmp::Reverse(c.gate),
                )
            });
        match best {
            Some(c) if c.explained.iter().any(|t| uncovered.contains(t)) => {
                for t in &c.explained {
                    uncovered.remove(t);
                }
                multiplet.push(c.gate);
            }
            _ => break,
        }
    }
    let mut unexplained: Vec<usize> = uncovered.into_iter().collect();
    unexplained.sort_unstable();

    Ok(IntercellDiagnosis {
        candidates,
        multiplet,
        unexplained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_faultsim::{run_test, FaultyBehavior, FaultyGate};
    use icd_logic::{Pattern, TruthTable};
    use icd_netlist::{CircuitBuilder, GateType, Library};

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(
            GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap(),
        )
        .unwrap();
        lib.insert(
            GateType::new(
                "NAND2",
                ["A", "B"],
                TruthTable::from_fn(2, |b| !(b[0] & b[1])),
            )
            .unwrap(),
        )
        .unwrap();
        lib
    }

    /// Two NAND trees feeding two outputs.
    fn circuit(lib: &Library) -> Circuit {
        let mut bld = CircuitBuilder::new("c", lib);
        let pis: Vec<_> = (0..4).map(|i| bld.add_input(&format!("a{i}"))).collect();
        let x = bld
            .add_gate("NAND2", &[pis[0], pis[1]], Some("U1"))
            .unwrap();
        let y = bld
            .add_gate("NAND2", &[pis[2], pis[3]], Some("U2"))
            .unwrap();
        let z1 = bld.add_gate("INV", &[x], Some("U3")).unwrap();
        let z2 = bld.add_gate("INV", &[y], Some("U4")).unwrap();
        bld.mark_output(z1, "z1");
        bld.mark_output(z2, "z2");
        bld.finish().unwrap()
    }

    fn all_patterns4() -> Vec<Pattern> {
        (0..16)
            .map(|i| Pattern::from_bits((0..4).map(move |k| (i >> k) & 1 == 1)))
            .collect()
    }

    #[test]
    fn single_faulty_gate_is_top_candidate() {
        let lib = lib();
        let c = circuit(&lib);
        let u1 = c.find_gate("U1").unwrap();
        // U1 output stuck at 1 == faulty cell computing constant 1.
        let faulty = FaultyGate::new(u1, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let pats = all_patterns4();
        let log = run_test(&c, &pats, &faulty).unwrap();
        assert!(!log.all_pass());
        let diag = diagnose(&c, &pats, &log).unwrap();
        assert_eq!(diag.best(), Some(u1));
        assert!(diag.unexplained.is_empty());
        assert_eq!(diag.multiplet, vec![u1]);
        // The candidate is consistent: the good output is always 0 when
        // failing (stuck-at-1 excitation).
        let top = &diag.candidates[0];
        assert!(top.consistent_static);
    }

    #[test]
    fn two_simultaneous_defects_need_a_two_gate_cover() {
        let lib = lib();
        let c = circuit(&lib);
        let u1 = c.find_gate("U1").unwrap();
        let u2 = c.find_gate("U2").unwrap();
        let pats = all_patterns4();

        // Merge the datalogs of two independent single-gate defects: this
        // emulates two simultaneous defects in disjoint cones.
        let f1 = FaultyGate::new(u1, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let f2 = FaultyGate::new(u2, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let log1 = run_test(&c, &pats, &f1).unwrap();
        let log2 = run_test(&c, &pats, &f2).unwrap();
        let mut merged = Datalog {
            circuit_name: log1.circuit_name.clone(),
            num_patterns: pats.len(),
            entries: Vec::new(),
        };
        let mut by_t: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for e in log1.entries.iter().chain(log2.entries.iter()) {
            by_t.entry(e.pattern_index)
                .or_default()
                .extend(&e.failing_outputs);
        }
        for (t, outs) in by_t {
            merged.entries.push(icd_faultsim::DatalogEntry {
                pattern_index: t,
                failing_outputs: outs,
            });
        }

        let diag = diagnose(&c, &pats, &merged).unwrap();
        assert!(diag.unexplained.is_empty());
        assert_eq!(diag.multiplet.len(), 2);
        assert!(diag.multiplet.contains(&u1));
        assert!(diag.multiplet.contains(&u2));
    }

    #[test]
    fn empty_datalog_yields_no_candidates() {
        let lib = lib();
        let c = circuit(&lib);
        let pats = all_patterns4();
        let log = Datalog {
            circuit_name: "c".into(),
            num_patterns: pats.len(),
            entries: vec![],
        };
        let diag = diagnose(&c, &pats, &log).unwrap();
        assert!(diag.candidates.is_empty());
        assert!(diag.multiplet.is_empty());
        assert!(diag.unexplained.is_empty());
    }

    #[test]
    fn bad_indices_are_reported() {
        let lib = lib();
        let c = circuit(&lib);
        let pats = all_patterns4();
        let log = Datalog {
            circuit_name: "c".into(),
            num_patterns: pats.len(),
            entries: vec![icd_faultsim::DatalogEntry {
                pattern_index: 99,
                failing_outputs: vec![0],
            }],
        };
        assert!(matches!(
            diagnose(&c, &pats, &log),
            Err(IntercellError::BadPatternIndex(99))
        ));
    }
}
