use std::collections::HashMap;

use icd_faultsim::{good_simulate, Datalog, DiffPropagator};
use icd_logic::Lv;
use icd_netlist::{Circuit, GateId, NetId};

use crate::{gate_cpt, IntercellError};

/// How many passing patterns are examined per candidate when counting
/// contradictions; bounds the cost on long production test sets.
const MAX_PASSING_SAMPLE: usize = 32;

/// How many top candidates (by explained failing patterns) receive the
/// passing-pattern contradiction analysis; the long tail keeps a zero
/// count. Bounds the cost on multi-million-gate circuits where a failing
/// pattern's critical paths can cross thousands of gates.
const MAX_SCORED_CANDIDATES: usize = 64;

/// One ranked inter-cell candidate, with explicit mismatch accounting.
///
/// A clean datalog lets the ranking demand a perfect match: the best
/// candidate explains *every* failing pattern and predicts *no* extra
/// failure. Noisy datalogs break both directions — truncated or dropped
/// entries make the true defect **miss** failing patterns it would have
/// explained, spurious entries make it look like it **mispredicts** — so
/// the two error directions are counted separately instead of being
/// collapsed into a single pass/fail verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCandidate {
    /// The suspected gate instance.
    pub gate: GateId,
    /// Failing patterns on whose critical paths the gate's output lies
    /// (type-1 evidence: "explains the failure").
    pub explained: Vec<usize>,
    /// Failing patterns in the datalog this candidate does **not**
    /// explain. Under a single-defect hypothesis these are evidence
    /// against the candidate; under noise (or multiple defects) a nonzero
    /// count is expected and tolerated by the ranking.
    pub misses: usize,
    /// Sampled passing patterns that contradict a single stuck-at defect
    /// at the gate output (the output was observable with the same good
    /// value as in the explained failures, yet the pattern passed) —
    /// patterns the candidate wrongly predicts as failing.
    pub mispredicts: usize,
    /// Whether the gate output held one consistent good value across all
    /// explained failing patterns (a single static culprit is plausible).
    pub consistent_static: bool,
}

impl GateCandidate {
    /// Total mismatch between the candidate's predicted and observed
    /// behaviour (misses + mispredicts). Zero means a perfect match on
    /// the sampled evidence.
    pub fn mismatches(&self) -> usize {
        self.misses + self.mispredicts
    }

    /// Ranking key: more explained failures first (equivalently, fewer
    /// misses), fewer mispredicts second. Deliberately *tolerant*: a
    /// candidate is never discarded for imperfect agreement, only
    /// demoted, so the true defect survives truncated or thinned
    /// datalogs.
    fn rank_key(&self) -> (usize, std::cmp::Reverse<usize>) {
        (self.explained.len(), std::cmp::Reverse(self.mispredicts))
    }
}

/// Tuning knobs of [`diagnose_with_options`]. [`Default`] reproduces the
/// classical (clean-datalog) behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnoseOptions {
    /// Passing patterns sampled per candidate when counting mispredicts.
    pub passing_sample: usize,
    /// Candidates (ranked by explained failures) that receive the
    /// mispredict scoring; the tail keeps a zero count.
    pub scored_candidates: usize,
    /// Minimum *newly covered* failing patterns a gate must contribute to
    /// enter the set cover. `1` is the exact classical cover; `2` or more
    /// keeps isolated spurious fails from drafting bogus gates into the
    /// multiplet — those patterns land in
    /// [`IntercellDiagnosis::unexplained`] instead, which is the honest
    /// answer for noise.
    pub min_cover_gain: usize,
    /// Hard cap on the multiplet size (`None` = unbounded). A tester
    /// datalog corrupted by heavy spurious-fail noise can otherwise
    /// inflate the cover arbitrarily.
    pub max_multiplet: Option<usize>,
}

impl Default for DiagnoseOptions {
    fn default() -> Self {
        DiagnoseOptions {
            passing_sample: MAX_PASSING_SAMPLE,
            scored_candidates: MAX_SCORED_CANDIDATES,
            min_cover_gain: 1,
            max_multiplet: None,
        }
    }
}

impl DiagnoseOptions {
    /// A profile for noisy datalogs: isolated fails cannot enter the set
    /// cover alone and the multiplet is capped, so spurious entries
    /// surface as `unexplained` rather than as phantom defects.
    pub fn noise_tolerant() -> Self {
        DiagnoseOptions {
            min_cover_gain: 2,
            max_multiplet: Some(8),
            ..DiagnoseOptions::default()
        }
    }
}

/// The result of inter-cell diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub struct IntercellDiagnosis {
    /// All candidates, ranked best-first.
    pub candidates: Vec<GateCandidate>,
    /// A greedy set cover of the failing patterns: the smallest (greedily)
    /// group of gates that together explain every failing pattern. For a
    /// single defect this is one gate; for multiple simultaneous defects it
    /// names one gate per defect, with no assumption about which failing
    /// pattern belongs to which defect.
    pub multiplet: Vec<GateId>,
    /// Failing patterns no candidate explains (ideally empty).
    pub unexplained: Vec<usize>,
}

impl IntercellDiagnosis {
    /// The best single suspected gate, if any candidate exists.
    pub fn best(&self) -> Option<GateId> {
        self.candidates.first().map(|c| c.gate)
    }
}

/// Effect-cause inter-cell diagnosis: produces ranked suspected gates from
/// the circuit, the applied patterns and the tester datalog.
///
/// For every failing pattern, gate-level [`gate_cpt`] traces the critical
/// nets from each failing observe point; the drivers of those nets are the
/// pattern's candidates. Candidates are then scored against sampled passing
/// patterns and a greedy set cover produces the multiplet (see
/// [`IntercellDiagnosis`]).
///
/// # Errors
///
/// Returns an error when the datalog references unknown patterns or
/// outputs, or the patterns are malformed.
pub fn diagnose(
    circuit: &Circuit,
    patterns: &[icd_logic::Pattern],
    datalog: &Datalog,
) -> Result<IntercellDiagnosis, IntercellError> {
    let good = good_simulate(circuit, patterns)?;
    diagnose_with_good(circuit, patterns, datalog, &good)
}

/// [`diagnose`] variant reusing a precomputed good simulation — the fast
/// path when several diagnosis stages share one pattern set on a large
/// circuit.
///
/// # Errors
///
/// Same as [`diagnose`].
pub fn diagnose_with_good(
    circuit: &Circuit,
    patterns: &[icd_logic::Pattern],
    datalog: &Datalog,
    good: &icd_faultsim::BitValues,
) -> Result<IntercellDiagnosis, IntercellError> {
    diagnose_with_options(
        circuit,
        patterns,
        datalog,
        good,
        &DiagnoseOptions::default(),
    )
}

/// [`diagnose_with_good`] with explicit [`DiagnoseOptions`] — the
/// noise-tolerant entry point. Candidate ranking counts misses and
/// mispredicts separately, and the greedy set cover can require a minimum
/// marginal gain per gate so isolated spurious fails are reported as
/// unexplained instead of fabricating suspects.
///
/// # Errors
///
/// Same as [`diagnose`].
pub fn diagnose_with_options(
    circuit: &Circuit,
    patterns: &[icd_logic::Pattern],
    datalog: &Datalog,
    good: &icd_faultsim::BitValues,
    options: &DiagnoseOptions,
) -> Result<IntercellDiagnosis, IntercellError> {
    // Phase 1: candidates from failing-pattern critical paths.
    let mut explained: HashMap<GateId, Vec<usize>> = HashMap::new();
    let mut fail_value: HashMap<GateId, Lv> = HashMap::new();
    let mut consistent: HashMap<GateId, bool> = HashMap::new();

    for entry in &datalog.entries {
        let t = entry.pattern_index;
        if t >= patterns.len() {
            return Err(IntercellError::BadPatternIndex(t));
        }
        let base: Vec<Lv> = (0..circuit.num_nets())
            .map(|i| Lv::from(good.value(NetId::from_index(i), t)))
            .collect();
        let mut seen_this_pattern: HashMap<GateId, ()> = HashMap::new();
        for &oi in &entry.failing_outputs {
            let &start = circuit
                .outputs()
                .get(oi)
                .ok_or(IntercellError::BadOutputIndex(oi))?;
            for net in gate_cpt(circuit, &base, start) {
                if let Some(gate) = circuit.driver(net) {
                    if seen_this_pattern.insert(gate, ()).is_none() {
                        explained.entry(gate).or_default().push(t);
                        let v = base[circuit.gate_output(gate).index()];
                        match fail_value.get(&gate) {
                            None => {
                                fail_value.insert(gate, v);
                                consistent.insert(gate, true);
                            }
                            Some(&prev) if prev == v => {}
                            Some(_) => {
                                consistent.insert(gate, false);
                            }
                        }
                    }
                }
            }
        }
    }

    // Phase 2: mispredict count against sampled passing patterns.
    let passing = datalog.passing_pattern_indices();
    let sample: Vec<usize> = passing
        .iter()
        .copied()
        .take(options.passing_sample)
        .collect();
    let mut propagator = DiffPropagator::new(circuit);
    let mut sample_bases: Vec<(usize, Vec<Lv>)> = Vec::with_capacity(sample.len());
    for &t in &sample {
        let base: Vec<Lv> = (0..circuit.num_nets())
            .map(|i| Lv::from(good.value(NetId::from_index(i), t)))
            .collect();
        sample_bases.push((t, base));
    }

    // Preliminary ranking by explained failures; only the head of the
    // list gets the (cone-bounded but non-trivial) mispredict scoring.
    let total_failing = datalog.failing_pattern_indices().len();
    let mut candidates: Vec<GateCandidate> = explained
        .into_iter()
        .map(|(gate, explained)| GateCandidate {
            gate,
            misses: total_failing.saturating_sub(explained.len()),
            explained,
            mispredicts: 0,
            consistent_static: consistent.get(&gate).copied().unwrap_or(false),
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.explained
            .len()
            .cmp(&a.explained.len())
            .then(a.gate.cmp(&b.gate))
    });
    for candidate in candidates.iter_mut().take(options.scored_candidates) {
        if !candidate.consistent_static {
            continue;
        }
        let out = circuit.gate_output(candidate.gate);
        let Some(&fail_v) = fail_value.get(&candidate.gate) else {
            // Unreachable by construction (every candidate gained an entry
            // in phase 1), but noise-hardened: a missing value only skips
            // the scoring rather than panicking the pipeline.
            continue;
        };
        // A flipped gate output can only reach the outputs in its
        // fanout-cone observability set; restrict the per-pattern output
        // scan to those positions.
        let obs_pos: Vec<usize> = circuit.observable_outputs(candidate.gate).iter().collect();
        if obs_pos.is_empty() {
            continue; // no observe point reachable: no flip can mispredict
        }
        for (_, base) in &sample_bases {
            // If the defect were the stuck-at that explains the failures,
            // a passing pattern with the same good value and an observable
            // output would have failed too.
            if base[out.index()] == fail_v {
                let changed =
                    propagator.propagate_within(circuit, base, &[(out, !fail_v)], &obs_pos);
                if !changed.is_empty() {
                    candidate.mispredicts += 1;
                }
            }
        }
    }

    candidates.sort_by(|a, b| b.rank_key().cmp(&a.rank_key()).then(a.gate.cmp(&b.gate)));

    // Phase 3: greedy set cover over failing patterns. A gate only enters
    // the cover when it newly explains at least `min_cover_gain` patterns
    // and the multiplet is below its cap; what stays uncovered is reported
    // as unexplained — the graceful answer for spurious-fail noise.
    //
    // Failing patterns are assigned bit slots so coverage is plain word
    // arithmetic: each candidate's explained set becomes a bitmask once,
    // each iteration computes every gain exactly once (popcount against
    // the uncovered mask), and membership in the multiplet is a flag
    // instead of a linear scan.
    let mut slot_of: HashMap<usize, usize> = HashMap::new();
    for t in datalog.failing_pattern_indices() {
        let next = slot_of.len();
        slot_of.entry(t).or_insert(next);
    }
    let mask_words = slot_of.len().div_ceil(64).max(1);
    let mut uncovered = vec![0u64; mask_words];
    for &s in slot_of.values() {
        uncovered[s / 64] |= 1u64 << (s % 64);
    }
    let explained_masks: Vec<Vec<u64>> = candidates
        .iter()
        .map(|c| {
            let mut mask = vec![0u64; mask_words];
            for t in &c.explained {
                if let Some(&s) = slot_of.get(t) {
                    mask[s / 64] |= 1u64 << (s % 64);
                }
            }
            mask
        })
        .collect();

    // Cone pre-filter: a candidate whose observability set misses every
    // failing output can never cover anything. CPT-derived candidates
    // always reach the failing output they were traced from, so on a
    // clean flow nothing is filtered — the filter guards the noisy paths
    // and removes dead candidates from every cover iteration.
    let mut failing_outputs_mask = vec![0u64; circuit.cone_index().output_words()];
    for entry in &datalog.entries {
        for &oi in &entry.failing_outputs {
            // Positions were validated against `circuit.outputs()` in
            // phase 1.
            failing_outputs_mask[oi / 64] |= 1u64 << (oi % 64);
        }
    }
    let cone_ok: Vec<bool> = candidates
        .iter()
        .map(|c| {
            circuit
                .observable_outputs(c.gate)
                .intersects_words(&failing_outputs_mask)
        })
        .collect();
    icd_obs::counter(
        "intercell.cone_filtered",
        cone_ok.iter().filter(|ok| !**ok).count() as u64,
        icd_obs::Stability::Stable,
    );

    let min_gain = options.min_cover_gain.max(1);
    let mut selected = vec![false; candidates.len()];
    let mut multiplet = Vec::new();
    let mut cover_iterations: u64 = 0;
    while uncovered.iter().any(|&w| w != 0)
        && options
            .max_multiplet
            .is_none_or(|cap| multiplet.len() < cap)
    {
        cover_iterations += 1;
        // `>=` keeps later equal keys, matching `max_by_key`'s
        // last-maximum tie-break (keys are in fact unique: the gate id is
        // part of the key).
        type CoverKey = (usize, std::cmp::Reverse<usize>, std::cmp::Reverse<GateId>);
        let mut best: Option<(usize, CoverKey)> = None;
        for (i, c) in candidates.iter().enumerate() {
            if selected[i] || !cone_ok[i] {
                continue;
            }
            let gain: usize = explained_masks[i]
                .iter()
                .zip(&uncovered)
                .map(|(m, u)| (m & u).count_ones() as usize)
                .sum();
            let key = (
                gain,
                std::cmp::Reverse(c.mispredicts),
                std::cmp::Reverse(c.gate),
            );
            if best.as_ref().is_none_or(|(_, bk)| key >= *bk) {
                best = Some((i, key));
            }
        }
        match best {
            Some((i, (gain, _, _))) if gain >= min_gain => {
                for (u, m) in uncovered.iter_mut().zip(&explained_masks[i]) {
                    *u &= !m;
                }
                selected[i] = true;
                multiplet.push(candidates[i].gate);
            }
            _ => break,
        }
    }
    let mut unexplained: Vec<usize> = slot_of
        .iter()
        .filter(|&(_, &s)| (uncovered[s / 64] >> (s % 64)) & 1 == 1)
        .map(|(&t, _)| t)
        .collect();
    unexplained.sort_unstable();

    // All three are pure functions of the input datalog, independent of
    // scheduling — hence scheduling-stable for the redacted snapshot.
    icd_obs::counter(
        "intercell.set_cover.iterations",
        cover_iterations,
        icd_obs::Stability::Stable,
    );
    icd_obs::counter(
        "intercell.candidates",
        candidates.len() as u64,
        icd_obs::Stability::Stable,
    );
    icd_obs::counter(
        "intercell.unexplained",
        unexplained.len() as u64,
        icd_obs::Stability::Stable,
    );

    Ok(IntercellDiagnosis {
        candidates,
        multiplet,
        unexplained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_faultsim::{run_test, FaultyBehavior, FaultyGate};
    use icd_logic::{Pattern, TruthTable};
    use icd_netlist::{CircuitBuilder, GateType, Library};

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new(
                "NAND2",
                ["A", "B"],
                TruthTable::from_fn(2, |b| !(b[0] & b[1])),
            )
            .unwrap(),
        )
        .unwrap();
        lib
    }

    /// Two NAND trees feeding two outputs.
    fn circuit(lib: &Library) -> Circuit {
        let mut bld = CircuitBuilder::new("c", lib);
        let pis: Vec<_> = (0..4).map(|i| bld.add_input(&format!("a{i}"))).collect();
        let x = bld
            .add_gate("NAND2", &[pis[0], pis[1]], Some("U1"))
            .unwrap();
        let y = bld
            .add_gate("NAND2", &[pis[2], pis[3]], Some("U2"))
            .unwrap();
        let z1 = bld.add_gate("INV", &[x], Some("U3")).unwrap();
        let z2 = bld.add_gate("INV", &[y], Some("U4")).unwrap();
        bld.mark_output(z1, "z1");
        bld.mark_output(z2, "z2");
        bld.finish().unwrap()
    }

    fn all_patterns4() -> Vec<Pattern> {
        (0..16)
            .map(|i| Pattern::from_bits((0..4).map(move |k| (i >> k) & 1 == 1)))
            .collect()
    }

    #[test]
    fn single_faulty_gate_is_top_candidate() {
        let lib = lib();
        let c = circuit(&lib);
        let u1 = c.find_gate("U1").unwrap();
        // U1 output stuck at 1 == faulty cell computing constant 1.
        let faulty = FaultyGate::new(u1, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let pats = all_patterns4();
        let log = run_test(&c, &pats, &faulty).unwrap();
        assert!(!log.all_pass());
        let diag = diagnose(&c, &pats, &log).unwrap();
        assert_eq!(diag.best(), Some(u1));
        assert!(diag.unexplained.is_empty());
        assert_eq!(diag.multiplet, vec![u1]);
        // The candidate is consistent: the good output is always 0 when
        // failing (stuck-at-1 excitation).
        let top = &diag.candidates[0];
        assert!(top.consistent_static);
    }

    #[test]
    fn two_simultaneous_defects_need_a_two_gate_cover() {
        let lib = lib();
        let c = circuit(&lib);
        let u1 = c.find_gate("U1").unwrap();
        let u2 = c.find_gate("U2").unwrap();
        let pats = all_patterns4();

        // Merge the datalogs of two independent single-gate defects: this
        // emulates two simultaneous defects in disjoint cones.
        let f1 = FaultyGate::new(u1, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let f2 = FaultyGate::new(u2, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let log1 = run_test(&c, &pats, &f1).unwrap();
        let log2 = run_test(&c, &pats, &f2).unwrap();
        let mut merged = Datalog {
            circuit_name: log1.circuit_name.clone(),
            num_patterns: pats.len(),
            entries: Vec::new(),
        };
        let mut by_t: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for e in log1.entries.iter().chain(log2.entries.iter()) {
            by_t.entry(e.pattern_index)
                .or_default()
                .extend(&e.failing_outputs);
        }
        for (t, outs) in by_t {
            merged.entries.push(icd_faultsim::DatalogEntry {
                pattern_index: t,
                failing_outputs: outs,
            });
        }

        let diag = diagnose(&c, &pats, &merged).unwrap();
        assert!(diag.unexplained.is_empty());
        assert_eq!(diag.multiplet.len(), 2);
        assert!(diag.multiplet.contains(&u1));
        assert!(diag.multiplet.contains(&u2));
    }

    #[test]
    fn empty_datalog_yields_no_candidates() {
        let lib = lib();
        let c = circuit(&lib);
        let pats = all_patterns4();
        let log = Datalog {
            circuit_name: "c".into(),
            num_patterns: pats.len(),
            entries: vec![],
        };
        let diag = diagnose(&c, &pats, &log).unwrap();
        assert!(diag.candidates.is_empty());
        assert!(diag.multiplet.is_empty());
        assert!(diag.unexplained.is_empty());
    }

    #[test]
    fn mismatch_accounting_sums_over_failing_patterns() {
        let lib = lib();
        let c = circuit(&lib);
        let u1 = c.find_gate("U1").unwrap();
        let faulty = FaultyGate::new(u1, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let pats = all_patterns4();
        let log = run_test(&c, &pats, &faulty).unwrap();
        let total = log.failing_pattern_indices().len();
        let diag = diagnose(&c, &pats, &log).unwrap();
        for cand in &diag.candidates {
            assert_eq!(cand.misses, total - cand.explained.len());
            assert_eq!(cand.mismatches(), cand.misses + cand.mispredicts);
        }
        // The true defect misses nothing on a clean datalog.
        assert_eq!(diag.candidates[0].misses, 0);
    }

    #[test]
    fn true_gate_survives_fail_memory_truncation() {
        let lib = lib();
        let c = circuit(&lib);
        let u1 = c.find_gate("U1").unwrap();
        let faulty = FaultyGate::new(u1, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let pats = all_patterns4();
        let full = run_test(&c, &pats, &faulty).unwrap();
        assert!(full.entries.len() > 1);
        // Tester fail memory truncated to a single entry.
        let noisy = icd_faultsim::NoiseModel::single(1, icd_faultsim::Corruption::TruncateAfter(1))
            .apply(&full, c.outputs().len());
        let diag = diagnose(&c, &pats, &noisy).unwrap();
        assert!(
            diag.candidates.iter().any(|cand| cand.gate == u1),
            "true gate lost under truncation"
        );
        // The surviving entry still ranks U1 at the top (it explains the
        // one recorded failure with no mispredict surplus over rivals).
        assert!(diag.multiplet.contains(&u1));
    }

    #[test]
    fn min_cover_gain_routes_spurious_fails_to_unexplained() {
        let lib = lib();
        let c = circuit(&lib);
        let u1 = c.find_gate("U1").unwrap();
        let faulty = FaultyGate::new(u1, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let pats = all_patterns4();
        let mut log = run_test(&c, &pats, &faulty).unwrap();
        // One spurious fail on a pattern the defect passes, on the *other*
        // cone's output, so no real candidate explains it.
        let spurious_t = log.passing_pattern_indices()[0];
        log.entries.push(icd_faultsim::DatalogEntry {
            pattern_index: spurious_t,
            failing_outputs: vec![1],
        });
        let (log, _) = log.sanitize(c.outputs().len());
        let good = good_simulate(&c, &pats).unwrap();

        // Exact cover drafts a second gate just for the spurious entry...
        let exact =
            diagnose_with_options(&c, &pats, &log, &good, &DiagnoseOptions::default()).unwrap();
        assert!(exact.multiplet.len() >= 2);
        // ...the tolerant cover reports it as unexplained instead.
        let tolerant =
            diagnose_with_options(&c, &pats, &log, &good, &DiagnoseOptions::noise_tolerant())
                .unwrap();
        assert_eq!(tolerant.multiplet, vec![u1]);
        assert_eq!(tolerant.unexplained, vec![spurious_t]);
    }

    #[test]
    fn max_multiplet_caps_the_cover() {
        let lib = lib();
        let c = circuit(&lib);
        let u1 = c.find_gate("U1").unwrap();
        let u2 = c.find_gate("U2").unwrap();
        let pats = all_patterns4();
        let f1 = FaultyGate::new(u1, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let f2 = FaultyGate::new(u2, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let log1 = run_test(&c, &pats, &f1).unwrap();
        let log2 = run_test(&c, &pats, &f2).unwrap();
        let mut merged = log1.clone();
        merged.entries.extend(log2.entries.iter().cloned());
        let (merged, _) = merged.sanitize(c.outputs().len());
        let good = good_simulate(&c, &pats).unwrap();
        let capped = diagnose_with_options(
            &c,
            &pats,
            &merged,
            &good,
            &DiagnoseOptions {
                max_multiplet: Some(1),
                ..DiagnoseOptions::default()
            },
        )
        .unwrap();
        assert_eq!(capped.multiplet.len(), 1);
        assert!(!capped.unexplained.is_empty());
    }

    #[test]
    fn set_cover_iterations_are_counted() {
        let lib = lib();
        let c = circuit(&lib);
        let u1 = c.find_gate("U1").unwrap();
        let faulty = FaultyGate::new(u1, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let pats = all_patterns4();
        let log = run_test(&c, &pats, &faulty).unwrap();
        let collector = icd_obs::Collector::new();
        let diag = {
            let _active = collector.install_local();
            diagnose(&c, &pats, &log).unwrap()
        };
        // One gate covers everything: exactly one greedy iteration.
        assert_eq!(diag.multiplet, vec![u1]);
        let snap = collector.snapshot();
        assert_eq!(snap.counters["intercell.set_cover.iterations"].0, 1);
        assert_eq!(
            snap.counters["intercell.candidates"].0,
            diag.candidates.len() as u64
        );
        assert_eq!(snap.counters["intercell.unexplained"].0, 0);
    }

    /// The straightforward greedy set cover the bitmask implementation in
    /// phase 3 replaced: recompute-gain-per-comparison `max_by_key` over a
    /// `HashSet` of uncovered patterns, with `multiplet.contains` for
    /// membership. Kept as the semantic reference.
    fn reference_cover(
        candidates: &[GateCandidate],
        failing: &[usize],
        options: &DiagnoseOptions,
    ) -> (Vec<GateId>, Vec<usize>) {
        let mut uncovered: std::collections::HashSet<usize> = failing.iter().copied().collect();
        let min_gain = options.min_cover_gain.max(1);
        let mut multiplet = Vec::new();
        while !uncovered.is_empty()
            && options
                .max_multiplet
                .is_none_or(|cap| multiplet.len() < cap)
        {
            let best = candidates
                .iter()
                .filter(|c| !multiplet.contains(&c.gate))
                .max_by_key(|c| {
                    (
                        c.explained.iter().filter(|t| uncovered.contains(t)).count(),
                        std::cmp::Reverse(c.mispredicts),
                        std::cmp::Reverse(c.gate),
                    )
                });
            match best {
                Some(c)
                    if c.explained.iter().filter(|t| uncovered.contains(t)).count() >= min_gain =>
                {
                    for t in &c.explained {
                        uncovered.remove(t);
                    }
                    multiplet.push(c.gate);
                }
                _ => break,
            }
        }
        let mut unexplained: Vec<usize> = uncovered.into_iter().collect();
        unexplained.sort_unstable();
        (multiplet, unexplained)
    }

    #[test]
    fn bitmask_cover_matches_reference_implementation() {
        let lib = lib();
        let c = circuit(&lib);
        let u1 = c.find_gate("U1").unwrap();
        let u2 = c.find_gate("U2").unwrap();
        let pats = all_patterns4();

        // Two simultaneous defects in disjoint cones plus a spurious fail:
        // the hardest cover shape the suite exercises.
        let f1 = FaultyGate::new(u1, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let f2 = FaultyGate::new(u2, FaultyBehavior::Static(TruthTable::from_fn(2, |_| true)));
        let log1 = run_test(&c, &pats, &f1).unwrap();
        let log2 = run_test(&c, &pats, &f2).unwrap();
        let mut merged = log1.clone();
        merged.entries.extend(log2.entries.iter().cloned());
        let spurious_t = merged.passing_pattern_indices()[0];
        merged.entries.push(icd_faultsim::DatalogEntry {
            pattern_index: spurious_t,
            failing_outputs: vec![0],
        });
        let (merged, _) = merged.sanitize(c.outputs().len());
        let good = good_simulate(&c, &pats).unwrap();

        for options in [
            DiagnoseOptions::default(),
            DiagnoseOptions::noise_tolerant(),
            DiagnoseOptions {
                max_multiplet: Some(1),
                ..DiagnoseOptions::default()
            },
        ] {
            let diag = diagnose_with_options(&c, &pats, &merged, &good, &options).unwrap();
            let (multiplet, unexplained) = reference_cover(
                &diag.candidates,
                &merged.failing_pattern_indices(),
                &options,
            );
            assert_eq!(diag.multiplet, multiplet, "options {options:?}");
            assert_eq!(diag.unexplained, unexplained, "options {options:?}");
        }
    }

    #[test]
    fn bad_indices_are_reported() {
        let lib = lib();
        let c = circuit(&lib);
        let pats = all_patterns4();
        let log = Datalog {
            circuit_name: "c".into(),
            num_patterns: pats.len(),
            entries: vec![icd_faultsim::DatalogEntry {
                pattern_index: 99,
                failing_outputs: vec![0],
            }],
        };
        assert!(matches!(
            diagnose(&c, &pats, &log),
            Err(IntercellError::BadPatternIndex(99))
        ));
    }
}
