//! Scenario tests for the inter-cell diagnosis front end over realistic
//! library circuits.

use icd_atpg::{generate_test_set, TestSetConfig};
use icd_cells::CellLibrary;
use icd_faultsim::{run_test_gate_fault, GateFault};
use icd_intercell::{diagnose, extract_local_patterns};
use icd_netlist::{generator, Circuit};

fn circuit(seed: u64, gates: usize) -> Circuit {
    let cells = CellLibrary::standard();
    let logic = cells.logic_library();
    let cfg = generator::GeneratorConfig {
        name: format!("s{seed}"),
        gates,
        primary_inputs: 8,
        primary_outputs: 8,
        flip_flops: 4,
        scan_chains: 2,
        seed,
    };
    generator::generate(&cfg, &logic).expect("generates")
}

#[test]
fn stuck_at_on_internal_net_names_its_driver() {
    let c = circuit(11, 120);
    let patterns = generate_test_set(&c, &TestSetConfig::stuck_at(48, 2));
    // Take an internal net with decent depth.
    let gate = c.topo_order()[c.num_gates() / 2];
    let net = c.gate_output(gate);
    let fault = GateFault::stuck_at(net, true);
    let datalog = run_test_gate_fault(&c, &patterns, &fault).expect("tests");
    if datalog.all_pass() {
        return; // undetected by this set: nothing to assert
    }
    let diag = diagnose(&c, &patterns, &datalog).expect("diagnoses");
    assert!(diag.unexplained.is_empty(), "CPT must explain all failures");
    assert!(
        diag.candidates.iter().any(|cand| cand.gate == gate),
        "driver gate missing from candidates"
    );
    // The driver must explain every failing pattern.
    let cand = diag
        .candidates
        .iter()
        .find(|cand| cand.gate == gate)
        .expect("present");
    assert_eq!(cand.explained.len(), datalog.entries.len());
    assert!(
        cand.consistent_static,
        "a stuck-at is statically consistent"
    );
}

#[test]
fn transition_fault_still_traces_to_the_driver() {
    let c = circuit(13, 120);
    let patterns = generate_test_set(&c, &TestSetConfig::transition(48, 3));
    let gate = c.topo_order()[c.num_gates() / 3];
    let net = c.gate_output(gate);
    let fault = GateFault::SlowToRise { net };
    let datalog = run_test_gate_fault(&c, &patterns, &fault).expect("tests");
    if datalog.all_pass() {
        return;
    }
    let diag = diagnose(&c, &patterns, &datalog).expect("diagnoses");
    assert!(diag.unexplained.is_empty());
    assert!(diag.candidates.iter().any(|cand| cand.gate == gate));
}

#[test]
fn bridging_victim_driver_is_a_candidate() {
    let c = circuit(17, 120);
    let patterns = generate_test_set(&c, &TestSetConfig::stuck_at(48, 4));
    let gates: Vec<_> = c.gates().collect();
    let victim_gate = gates[gates.len() / 4];
    let victim = c.gate_output(victim_gate);
    let aggressor = c.gate_output(gates[3 * gates.len() / 4]);
    let fault = GateFault::Bridging { victim, aggressor };
    let datalog = run_test_gate_fault(&c, &patterns, &fault).expect("tests");
    if datalog.all_pass() {
        return;
    }
    let diag = diagnose(&c, &patterns, &datalog).expect("diagnoses");
    assert!(diag.unexplained.is_empty());
    assert!(
        diag.candidates.iter().any(|cand| cand.gate == victim_gate),
        "victim driver missing from candidates"
    );
}

#[test]
fn local_patterns_track_scan_coordinates() {
    // End-to-end sanity: the datalog's failing observe points translate
    // to tester coordinates and local extraction stays consistent.
    let c = circuit(19, 100);
    let patterns = generate_test_set(&c, &TestSetConfig::stuck_at(32, 5));
    let gate = c.topo_order()[c.num_gates() / 2];
    let net = c.gate_output(gate);
    let datalog =
        run_test_gate_fault(&c, &patterns, &GateFault::stuck_at(net, false)).expect("tests");
    if datalog.all_pass() {
        return;
    }
    for e in &datalog.entries {
        for &o in &e.failing_outputs {
            // Must not panic, and scan coordinates must be within range.
            match c.tester_coordinate(o) {
                icd_netlist::TesterCoordinate::ScanCell { chain, .. } => {
                    assert!(chain < c.scan_info().scan_chains);
                }
                icd_netlist::TesterCoordinate::Po { index, .. } => {
                    assert!(index < c.outputs().len());
                }
            }
        }
    }
    let local = extract_local_patterns(&c, &patterns, &datalog, gate).expect("extracts");
    assert_eq!(local.lfp.len(), datalog.entries.len());
}
