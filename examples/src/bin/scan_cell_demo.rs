//! Sequential-cell demonstration: the paper's future-work direction
//! ("extend the proposed approach to handle scan flip-flops") at the
//! substrate level. The charge-retentive switch-level mode simulates a
//! transmission-gate D latch and a scan D flip-flop through a clocked
//! input sequence — the structures a future sequential intra-cell
//! diagnosis would trace.
//!
//! Run with: `cargo run -p icd-examples --bin scan_cell_demo`

use icd_cells::sequential::{dlhvtx1, sdffhvtx1};
use icd_logic::Lv;
use icd_switch::{spice, Forcing};

fn drive(cell: &icd_switch::CellNetlist, steps: &[(&str, Vec<bool>)]) {
    let sequence: Vec<Vec<Lv>> = steps
        .iter()
        .map(|(_, bits)| bits.iter().copied().map(Lv::from).collect())
        .collect();
    let states = cell
        .solve_sequence(&sequence, &Forcing::none())
        .expect("sequence evaluates");
    for ((label, bits), state) in steps.iter().zip(states.iter()) {
        let inputs: String = bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
        println!(
            "  {label:<28} inputs={inputs}  Q={}",
            state.value(cell.output())
        );
    }
}

fn main() {
    let latch = dlhvtx1();
    println!(
        "D latch {} ({} transistors): transparent while CK=1",
        latch.name(),
        latch.num_transistors()
    );
    drive(
        &latch,
        &[
            ("open, write 1", vec![true, true]),
            ("close", vec![true, false]),
            ("D falls while closed", vec![false, false]),
            ("open, follow D=0", vec![false, true]),
            ("close, hold 0", vec![true, false]),
        ],
    );

    let ff = sdffhvtx1();
    println!(
        "\nscan flip-flop {} ({} transistors): D/SI/SE/CK",
        ff.name(),
        ff.num_transistors()
    );
    drive(
        &ff,
        &[
            (
                "CK low, master samples D=1",
                vec![true, false, false, false],
            ),
            ("rising edge: capture 1", vec![true, false, false, true]),
            ("D falls, CK high: Q holds", vec![false, false, false, true]),
            (
                "CK low, master samples D=0",
                vec![false, false, false, false],
            ),
            ("rising edge: capture 0", vec![true, false, false, true]),
            ("scan mode: sample SI=1", vec![false, true, true, false]),
            ("rising edge: shift SI", vec![false, true, true, true]),
        ],
    );

    println!("\nSPICE view of the latch (for analog cross-checking):");
    print!(
        "{}",
        spice::to_spice(&latch, &spice::SpiceOptions::default())
    );
}
