//! A yield-learning campaign on one cell: inject many random physical
//! defects (the paper's 30 % stuck-at / 30 % bridging / 40 % delay mix),
//! diagnose each at cell level, and report accuracy and resolution
//! statistics — the §4.1 methodology in miniature.
//!
//! Run with: `cargo run -p icd-examples --bin defect_campaign [CELL] [COUNT]`

use icd_cells::CellLibrary;
use icd_core::{diagnose, LocalTest};
use icd_defects::{sample_defects, BehaviorClass, MixConfig};
use icd_logic::Lv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let cell_name = args.next().unwrap_or_else(|| "AO8DHVTX1".to_owned());
    let count: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50);

    let cells = CellLibrary::standard();
    let cell = cells
        .get(&cell_name)
        .ok_or_else(|| format!("unknown cell {cell_name:?}"))?
        .netlist();
    println!(
        "campaign: {} random observable defects on {} ({} transistors)",
        count,
        cell.name(),
        cell.num_transistors()
    );

    let good = cell.truth_table()?;
    let n = cell.num_inputs();
    let sample = sample_defects(cell, count, &MixConfig::default(), 2024)?;

    let mut per_class: std::collections::BTreeMap<String, (usize, usize, usize)> =
        Default::default();
    for injected in &sample {
        let behavior = injected
            .characterization
            .behavior
            .as_ref()
            .expect("sampled defects are observable");

        // Exhaustive two-pattern test of the faulty cell.
        let mut lfp = Vec::new();
        let mut lpp = Vec::new();
        for prev in 0..(1usize << n) {
            for cur in 0..(1usize << n) {
                let pb: Vec<bool> = (0..n).map(|k| (prev >> k) & 1 == 1).collect();
                let cb: Vec<bool> = (0..n).map(|k| (cur >> k) & 1 == 1).collect();
                let prev_good = good.eval_bits(&pb);
                let raw = behavior.eval(&pb, &cb, prev_good);
                let eff = if raw == Lv::U { prev_good } else { raw };
                if eff.conflicts_with(good.eval_bits(&cb)) {
                    lfp.push(LocalTest::two_pattern(pb, cb));
                } else {
                    lpp.push(LocalTest::two_pattern(pb, cb));
                }
            }
        }
        if lfp.is_empty() {
            continue;
        }
        let report = diagnose(cell, &lfp, &lpp)?;
        let truth = &injected.characterization.ground_truth;
        let hit = truth
            .nets
            .iter()
            .any(|t| report.suspect_nets(cell).contains(t))
            || truth
                .transistors
                .iter()
                .any(|t| report.suspect_transistors().contains(t));
        let entry = per_class
            .entry(injected.characterization.class.to_string())
            .or_default();
        entry.0 += 1;
        if hit {
            entry.1 += 1;
            entry.2 += report.net_resolution(cell);
        }
    }

    println!(
        "\n{:<12} {:>8} {:>8} {:>16}",
        "class", "runs", "hits", "avg net resol."
    );
    for (class, (runs, hits, resol)) in &per_class {
        println!(
            "{:<12} {:>8} {:>8} {:>16.2}",
            class,
            runs,
            hits,
            if *hits > 0 {
                *resol as f64 / *hits as f64
            } else {
                0.0
            }
        );
    }
    let _ = BehaviorClass::StuckLike; // classes shown via Display above
    Ok(())
}
