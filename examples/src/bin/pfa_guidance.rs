//! Physical-failure-analysis guidance: the consumer-facing report the
//! diagnosis flow exists to produce. Two dies are analyzed — one with an
//! intra-cell defect (PFA should cross-section inside the cell) and one
//! with an inter-cell bridge (the empty suspect list redirects PFA to the
//! routing, the paper's circuit-C verdict).
//!
//! Run with: `cargo run -p icd-examples --bin pfa_guidance`

use icd_atpg::{generate_test_set, TestSetConfig};
use icd_cells::CellLibrary;
use icd_core::{diagnose, DiagnosisReport, LocalTest};
use icd_defects::{characterize, Defect};
use icd_faultsim::{run_test, run_test_gate_fault, Datalog, FaultyGate, GateFault};
use icd_intercell::{diagnose as inter_diagnose, extract_local_patterns};
use icd_netlist::{generator, Circuit};

struct Analysis {
    suspected: String,
    cell_name: String,
    report: DiagnosisReport,
}

fn analyze(
    cells: &CellLibrary,
    circuit: &Circuit,
    patterns: &[icd_logic::Pattern],
    datalog: &Datalog,
) -> Result<Option<Analysis>, Box<dyn std::error::Error>> {
    if datalog.all_pass() {
        return Ok(None);
    }
    let inter = inter_diagnose(circuit, patterns, datalog)?;
    let Some(suspected) = inter.best() else {
        return Ok(None);
    };
    let local = extract_local_patterns(circuit, patterns, datalog, suspected)?;
    let lfp: Vec<LocalTest> = local
        .lfp
        .iter()
        .map(|p| LocalTest::two_pattern(p.previous.clone(), p.inputs.clone()))
        .collect();
    let lpp: Vec<LocalTest> = local
        .lpp
        .iter()
        .map(|p| LocalTest::two_pattern(p.previous.clone(), p.inputs.clone()))
        .collect();
    let cell_name = circuit.gate_type(suspected).name().to_owned();
    let cell = cells.get(&cell_name).expect("library cell").netlist();
    let report = diagnose(cell, &lfp, &lpp)?;
    Ok(Some(Analysis {
        suspected: circuit.gate_name(suspected),
        cell_name,
        report,
    }))
}

fn print_guidance(cells: &CellLibrary, die: &str, analysis: Option<&Analysis>) {
    println!("=== PFA guidance for die {die} ===");
    match analysis {
        None => println!("device passed or no candidate: no PFA target"),
        Some(a) if a.report.is_empty() => {
            println!("suspected instance : {} ({})", a.suspected, a.cell_name);
            println!("intra-cell verdict : EMPTY suspect list");
            println!("-> do NOT de-layer the cell; inspect the surrounding routing");
            println!("   (inter-cell defect, as in the paper's circuit-C case)");
        }
        Some(a) => {
            let cell = cells.get(&a.cell_name).expect("library cell").netlist();
            println!("suspected instance : {} ({})", a.suspected, a.cell_name);
            println!("cross-section plan :");
            for c in &a.report.candidates {
                println!("   {}", c.description);
            }
            println!(
                "   ({} locations over {} nets)",
                a.report.resolution(),
                a.report.net_resolution(cell)
            );
        }
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cells = CellLibrary::standard();
    let logic = cells.logic_library();
    let circuit = generator::generate(&generator::circuit_a(), &logic)?;
    let patterns = generate_test_set(&circuit, &TestSetConfig::transition(25, 9));

    // Die 1: an intra-cell defect (internal node shorted to ground).
    let cell = cells.get("AO7SVTX1").expect("standard cell").netlist();
    let gate = circuit
        .gates()
        .find(|&g| circuit.gate_type(g).name() == "AO7SVTX1")
        .expect("instantiated");
    let a_net = cell.find_net("A").expect("input A");
    let ch = characterize(cell, &Defect::hard_short(a_net, cell.gnd()))?;
    let faulty = FaultyGate::new(gate, ch.behavior.expect("observable"));
    let datalog = run_test(&circuit, &patterns, &faulty)?;
    // The tester reports failures at scan coordinates, as on real ATE:
    print!("{}", icd_faultsim::datalog_text::pretty(&datalog, &circuit));
    println!();
    let analysis = analyze(&cells, &circuit, &patterns, &datalog)?;
    print_guidance(&cells, "W07-D13 (intra-cell defect)", analysis.as_ref());

    // Die 2: an inter-cell bridge between two routing nets.
    let gates: Vec<_> = circuit.gates().collect();
    let victim = circuit.gate_output(gates[gates.len() / 4]);
    let aggressor = circuit.gate_output(gates[3 * gates.len() / 4]);
    let datalog = run_test_gate_fault(
        &circuit,
        &patterns,
        &GateFault::Bridging { victim, aggressor },
    )?;
    let analysis = analyze(&cells, &circuit, &patterns, &datalog)?;
    print_guidance(&cells, "W07-D21 (inter-cell bridge)", analysis.as_ref());

    Ok(())
}
