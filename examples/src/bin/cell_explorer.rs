//! Interactive cell exploration: print a cell's transistor netlist, its
//! derived truth table, and the critical-path trace for a chosen input
//! vector — the Figs.-6–8 walkthrough for any cell and stimulus. With
//! `--diagnose` a sample defect is injected and the step-by-step Fig.-9
//! procedure trace is shown.
//!
//! Run with: `cargo run -p icd-examples --bin cell_explorer [CELL] [VECTOR] [--diagnose]`
//! e.g. `cargo run -p icd-examples --bin cell_explorer AO8DHVTX1 0111 --diagnose`

use icd_cells::CellLibrary;
use icd_core::{diagnose_traced, transistor_cpt, LocalTest};
use icd_defects::{characterize, Defect};
use icd_logic::{Lv, Pattern};
use icd_switch::TransistorKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let cell_name = args.next().unwrap_or_else(|| "AO8DHVTX1".to_owned());
    let vector = args.next().unwrap_or_else(|| "0111".to_owned());

    let cells = CellLibrary::standard();
    let Some(cell) = cells.get(&cell_name) else {
        eprintln!("unknown cell {cell_name:?}; available cells:");
        for c in cells.iter() {
            eprintln!("  {}", c.name());
        }
        std::process::exit(1);
    };
    let nl = cell.netlist();

    println!("cell {}", nl.name());
    println!(
        "inputs: {}",
        nl.inputs()
            .iter()
            .map(|&n| nl.net_name(n).to_owned())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("transistors:");
    for (_, t) in nl.transistors() {
        let kind = match t.kind {
            TransistorKind::Nmos => "nmos",
            TransistorKind::Pmos => "pmos",
        };
        println!(
            "  {:<4} {}  gate={:<8} source={:<8} drain={:<8}",
            t.name,
            kind,
            nl.net_name(t.gate),
            nl.net_name(t.source),
            nl.net_name(t.drain)
        );
    }

    let table = nl.truth_table()?;
    println!("\ntruth table (inputs LSB-first): {table}");

    let pattern: Pattern = vector.parse()?;
    if pattern.len() != nl.num_inputs() {
        eprintln!(
            "vector {vector:?} has width {}, cell expects {}",
            pattern.len(),
            nl.num_inputs()
        );
        std::process::exit(1);
    }
    let inputs: Vec<Lv> = pattern.iter().copied().collect();
    let outcome = transistor_cpt(nl, &inputs)?;
    println!(
        "\ncritical path trace under {} (output {} = {}):",
        vector,
        nl.net_name(nl.output()),
        outcome.values.value(nl.output())
    );
    for item in &outcome.trace {
        println!(
            "  {:<10} = {}",
            item.display(nl),
            outcome.suspects.value(item).expect("traced item")
        );
    }

    if std::env::args().any(|a| a == "--diagnose") {
        // Inject a representative defect (first internal net shorted to
        // ground) and show the Fig.-9 procedure step by step.
        let victim = nl
            .nets()
            .find(|&n| !nl.is_rail(n) && n != nl.output() && !nl.inputs().contains(&n))
            .unwrap_or(nl.output());
        let defect = Defect::hard_short(victim, nl.gnd());
        let ch = characterize(nl, &defect)?;
        println!("\ninjected for diagnosis: {}", defect.describe(nl));
        let Some(behavior) = ch.behavior else {
            println!("defect not observable; nothing to diagnose");
            return Ok(());
        };
        let good = nl.truth_table()?;
        let n = nl.num_inputs();
        let mut lfp = Vec::new();
        let mut lpp = Vec::new();
        for combo in 0..(1usize << n) {
            let bits: Vec<bool> = (0..n).map(|k| (combo >> k) & 1 == 1).collect();
            let g = good.eval_bits(&bits);
            let f = behavior.eval(&bits, &bits, g);
            if f.conflicts_with(g) {
                lfp.push(LocalTest::static_vector(bits));
            } else {
                lpp.push(LocalTest::static_vector(bits));
            }
        }
        if lfp.is_empty() {
            println!("defect produces no static failures (dynamic only)");
            return Ok(());
        }
        let (report, trace) = diagnose_traced(nl, &lfp, &lpp)?;
        println!("procedure trace (list sizes after each step):");
        print!("{trace}");
        println!("final report:");
        print!("{}", report.summary(nl));
    }
    Ok(())
}
