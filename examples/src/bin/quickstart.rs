//! Quickstart: diagnose a defect inside a single standard cell.
//!
//! The intra-cell engine needs three things: the cell's transistor
//! netlist, the local failing patterns and the local passing patterns.
//! Here we inject a physical defect (a hard short of the internal pull-up
//! node `N16` to ground in the AOI cell `AO7SVTX1`), derive the local
//! patterns by exhaustive cell-level testing, and run the diagnosis.
//!
//! Run with: `cargo run -p icd-examples --bin quickstart`

use icd_cells::CellLibrary;
use icd_core::{diagnose, LocalTest};
use icd_defects::{characterize, Defect};
use icd_logic::Lv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a cell from the reconstructed STM-style library.
    let cells = CellLibrary::standard();
    let cell = cells.get("AO7SVTX1").expect("standard cell").netlist();
    println!(
        "cell {} ({} transistors, {} inputs): Z = !(A | (B & C))",
        cell.name(),
        cell.num_transistors(),
        cell.num_inputs()
    );

    // 2. Inject a physical defect and characterize it at switch level
    //    (this plays the role of the paper's SPICE characterization).
    let n16 = cell.find_net("N16").expect("internal net");
    let defect = Defect::hard_short(n16, cell.gnd());
    let ch = characterize(cell, &defect)?;
    println!("injected: {} -> {} class", defect.describe(cell), ch.class);
    let behavior = ch.behavior.expect("hard rail shorts are observable");

    // 3. Test the faulty cell: every input vector whose faulty output
    //    miscompares is a local failing pattern, the rest are passing.
    let good = cell.truth_table()?;
    let mut lfp = Vec::new();
    let mut lpp = Vec::new();
    for combo in 0..(1usize << cell.num_inputs()) {
        let bits: Vec<bool> = (0..cell.num_inputs())
            .map(|k| (combo >> k) & 1 == 1)
            .collect();
        let good_out = good.eval_bits(&bits);
        let faulty_out = behavior.eval(&bits, &bits, good_out);
        if faulty_out.conflicts_with(good_out) {
            lfp.push(LocalTest::static_vector(bits));
        } else {
            lpp.push(LocalTest::static_vector(bits));
        }
    }
    println!(
        "local patterns: {} failing, {} passing",
        lfp.len(),
        lpp.len()
    );

    // 4. Diagnose: critical path tracing at transistor level, suspect-list
    //    intersection, vindication, fault-model allocation.
    let report = diagnose(cell, &lfp, &lpp)?;
    println!(
        "\nintra-cell diagnosis ({} candidates):",
        report.candidates.len()
    );
    print!("{}", report.summary(cell));
    println!(
        "resolution: {} locations / {} nets",
        report.resolution(),
        report.net_resolution(cell)
    );

    // 5. The injected net must be implicated with the right polarity:
    //    its fault-free value was 1 in the failures, so it is Sa0.
    let hit = report
        .gsl
        .iter()
        .any(|(item, &v)| item.net(cell) == n16 && v == Lv::One);
    println!(
        "\nground truth N16 implicated as Sa0: {}",
        if hit { "yes" } else { "no" }
    );
    Ok(())
}
