//! The complete Fig.-2 flow on a full circuit: production test with a
//! defective die, datalog, inter-cell (gate-level) diagnosis, DUT
//! simulation and intra-cell diagnosis — the yield-learning scenario the
//! paper's introduction motivates.
//!
//! Run with: `cargo run -p icd-examples --bin full_flow`

use icd_atpg::{generate_test_set, TestSetConfig};
use icd_cells::CellLibrary;
use icd_core::{diagnose, LocalTest};
use icd_defects::{characterize, Defect};
use icd_faultsim::{run_test, FaultyGate};
use icd_intercell::{diagnose as inter_diagnose, extract_local_patterns};
use icd_netlist::generator;
use icd_switch::Terminal;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the device under test: the paper's circuit A (258 gates,
    //    30 scan flip-flops, 1 scan chain) from the standard library.
    let cells = CellLibrary::standard();
    let logic = cells.logic_library();
    let circuit = generator::generate(&generator::circuit_a(), &logic)?;
    println!(
        "circuit {}: {} gates, {} observe points",
        circuit.name(),
        circuit.num_gates(),
        circuit.outputs().len()
    );

    // 2. Generate the production test set: 25 transition-fault patterns,
    //    as in the paper's §4.1.
    let patterns = generate_test_set(&circuit, &TestSetConfig::transition(25, 42));
    println!("test set: {} ordered patterns", patterns.len());

    // 3. Manufacture a defective die: one AO8DHVTX1 instance has a
    //    resistive open at T7's gate contact (a delay defect).
    let cell = cells.get("AO8DHVTX1").expect("standard cell").netlist();
    let gate = circuit
        .gates()
        .find(|&g| circuit.gate_type(g).name() == "AO8DHVTX1")
        .expect("circuit A instantiates AO8DHVTX1");
    let t7 = cell.find_transistor("T7").expect("T7 exists");
    let defect = Defect::resistive_open(t7, Terminal::Gate);
    let ch = characterize(cell, &defect)?;
    println!(
        "defective die: {} in instance {} ({} class)",
        defect.describe(cell),
        circuit.gate_name(gate),
        ch.class
    );

    // 4. Production test: the tester records the datalog.
    let faulty = FaultyGate::new(gate, ch.behavior.expect("observable"));
    let datalog = run_test(&circuit, &patterns, &faulty)?;
    println!(
        "datalog: {} failing of {} patterns",
        datalog.entries.len(),
        datalog.num_patterns
    );
    if datalog.all_pass() {
        println!("the defect escaped this test set — nothing to diagnose");
        return Ok(());
    }

    // 5. Inter-cell diagnosis: from failing outputs to suspected gates.
    let inter = inter_diagnose(&circuit, &patterns, &datalog)?;
    println!("inter-cell candidates (top 3):");
    for c in inter.candidates.iter().take(3) {
        println!(
            "  {} ({}) explains {} failing patterns ({} misses, {} mispredicts)",
            circuit.gate_name(c.gate),
            circuit.gate_type(c.gate).name(),
            c.explained.len(),
            c.misses,
            c.mispredicts
        );
    }

    // 6. DUT simulation + intra-cell diagnosis for each top suspect, as
    //    the paper's flow prescribes ("the intra-cell diagnosis is
    //    executed for each Suspected Gate"). An empty report exonerates a
    //    suspect and moves PFA to the next one.
    let mut confirmed = false;
    for candidate in inter.candidates.iter().take(4) {
        let suspected = candidate.gate;
        let local = extract_local_patterns(&circuit, &patterns, &datalog, suspected)?;
        let lfp: Vec<LocalTest> = local
            .lfp
            .iter()
            .map(|p| LocalTest::two_pattern(p.previous.clone(), p.inputs.clone()))
            .collect();
        let lpp: Vec<LocalTest> = local
            .lpp
            .iter()
            .map(|p| LocalTest::two_pattern(p.previous.clone(), p.inputs.clone()))
            .collect();
        if lfp.is_empty() {
            continue;
        }
        let suspected_cell = cells
            .get(circuit.gate_type(suspected).name())
            .expect("library cell")
            .netlist();
        let report = diagnose(suspected_cell, &lfp, &lpp)?;
        println!(
            "\nintra-cell diagnosis of {} ({}; {} lfp / {} lpp):",
            circuit.gate_name(suspected),
            suspected_cell.name(),
            lfp.len(),
            lpp.len()
        );
        print!("{}", report.summary(suspected_cell));
        if report.is_empty() {
            continue; // exonerated: try the next suspected gate
        }

        // 7. "PFA": check the candidates against the known injection.
        if suspected == gate {
            let implicated = report.suspect_transistors().contains(&t7)
                || report
                    .suspect_nets(suspected_cell)
                    .contains(&cell.transistor(t7).gate);
            println!(
                "\nPFA at the reported location would {} the defect",
                if implicated { "confirm" } else { "miss" }
            );
            confirmed = implicated;
            break;
        }
    }
    if !confirmed {
        println!("\nthe defect hides behind an equivalent location for this test set");
    }
    Ok(())
}
