//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of the proptest API the workspace uses: the [`proptest!`]
//! macro, value strategies (ranges, [`any`], [`Just`], [`prop_oneof!`],
//! `prop::collection::vec`, `prop_map`, `prop_filter`), the
//! `prop_assert*` macros and [`ProptestConfig`].
//!
//! Semantics: each property runs `cases` times against deterministically
//! seeded random inputs (seed = FNV-1a of the test name, so runs are
//! reproducible across machines and invocations). There is **no
//! shrinking** — a failing case reports the generated inputs' debug
//! representation via the panic message instead. `.proptest-regressions`
//! files are ignored.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// Runner configuration; only the field the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error a property body reports via `prop_assert*` (no shrinking, so a
/// plain message suffices).
pub type TestCaseError = String;

/// Deterministic per-test RNG: FNV-1a of the test name XOR the case
/// index, expanded through the stub StdRng.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Everything a property-test file conventionally imports.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        case_rng, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };

    /// The `prop::` module path (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::strategy::collection;
    }
}

/// The property-test macro: declares each `fn name(x in strategy, ..)`
/// item as a `#[test]` running the body over random draws.
#[macro_export]
macro_rules! proptest {
    (
        @cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::Strategy::generate(&$strat, &mut rng);
                    )*
                    let inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)*),
                        $(&$arg,)*
                    );
                    #[allow(clippy::redundant_closure_call)]
                    let verdict: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(message) = verdict {
                        panic!(
                            "property {} failed at case {case}:\n{message}\ninputs:\n{inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` with an optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (lhs, rhs) => {
                if !(lhs == rhs) {
                    return Err(format!(
                        "assertion failed: {} == {}\n  left: {lhs:?}\n right: {rhs:?}",
                        stringify!($a),
                        stringify!($b),
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (lhs, rhs) => {
                if !(lhs == rhs) {
                    return Err(format!(
                        "assertion failed: {} == {} ({})\n  left: {lhs:?}\n right: {rhs:?}",
                        stringify!($a),
                        stringify!($b),
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// `prop_assert_ne!(a, b)` with an optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (lhs, rhs) => {
                if lhs == rhs {
                    return Err(format!(
                        "assertion failed: {} != {}\n  both: {lhs:?}",
                        stringify!($a),
                        stringify!($b),
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (lhs, rhs) => {
                if lhs == rhs {
                    return Err(format!(
                        "assertion failed: {} != {} ({})\n  both: {lhs:?}",
                        stringify!($a),
                        stringify!($b),
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// `prop_assume!(cond)` — without shrinking or rejection bookkeeping the
/// stub simply skips the rest of the case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn case_rng_is_deterministic() {
        let mut a = case_rng("t", 3);
        let mut b = case_rng("t", 3);
        assert_eq!(
            rand::Rng::random::<u64>(&mut a),
            rand::Rng::random::<u64>(&mut b)
        );
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn map_and_vec_compose(v in prop::collection::vec(any::<bool>(), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }

        #[test]
        fn oneof_draws_every_arm(x in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_form_compiles(seed in any::<u64>()) {
            let _ = seed;
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_report_inputs() {
        // The #[test] meta is optional in the macro grammar, so a nested
        // plain fn exercises the failure path without the harness
        // rejecting a nested #[test] item.
        proptest! {
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
