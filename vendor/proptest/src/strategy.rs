//! Value-generation strategies for the proptest stub.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy draws a finished value directly from the runner's RNG.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying (bounded) like upstream's
    /// local-reject behaviour. `_whence` matches upstream's signature.
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Chains a dependent strategy derived from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Tuples of strategies are strategies over tuples of values, as in
/// upstream proptest (arities 2–4; extend as needed).
macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive draws");
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between same-typed strategies (see
/// [`crate::prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds the union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}
arbitrary_uniform!(bool, u8, u16, u32, u64, usize, i32, i64, f64);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: super::strategy::RangeBound> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: super::strategy::RangeBound> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Integer types usable as range-strategy bounds.
pub trait RangeBound: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! range_bound {
    ($($t:ty),*) => {$(
        impl RangeBound for $t {
            fn sample_half_open(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                rng.random_range(lo..hi)
            }
            fn sample_inclusive(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                rng.random_range(lo..=hi)
            }
        }
    )*};
}
range_bound!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{RangeBound, Strategy};
    use rand::rngs::StdRng;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len)` — `len` may be a `usize`, `a..b` or `a..=b`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = usize::sample_inclusive(rng, self.size.lo, self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn just_yields_its_value() {
        assert_eq!(Just(41).generate(&mut rng()), 41);
    }

    #[test]
    fn map_applies() {
        let s = (0usize..4).prop_map(|v| v * 10);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r) % 10, 0);
        }
    }

    #[test]
    fn filter_rejects() {
        let s = (0usize..100).prop_filter("even", |v| v % 2 == 0);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }

    #[test]
    fn flat_map_chains() {
        let s = (1usize..4).prop_flat_map(|n| super::collection::vec(0u8..10, n));
        let mut r = rng();
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn union_draws_each_arm() {
        let s = Union::new(vec![Just(1u8).boxed(), Just(2).boxed()]);
        let mut r = rng();
        let draws: Vec<u8> = (0..100).map(|_| s.generate(&mut r)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
    }
}
