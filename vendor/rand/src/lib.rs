//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the (small) subset of the rand 0.9 API the workspace uses, backed by a
//! deterministic SplitMix64/xoshiro256++ generator. Streams differ from
//! upstream `rand`, but every consumer in the workspace only relies on
//! *seeded determinism*, never on a specific stream.
//!
//! Supported surface:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`] / `from_seed`
//! * [`Rng::random`] for the primitive types the workspace draws
//! * [`Rng::random_bool`], [`Rng::random_range`] over integer ranges
//! * [`seq::SliceRandom::shuffle`] (Fisher-Yates)

#![forbid(unsafe_code)]

/// Byte-seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (SplitMix64 expansion, as
    /// upstream rand does).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for b in seed.as_mut().chunks_mut(8) {
            let v = sm.next_u64().to_le_bytes();
            b.copy_from_slice(&v[..b.len()]);
        }
        Self::from_seed(seed)
    }
}

/// The core source of randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types drawable with [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}
impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u16
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i32
    }
}
impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable as [`Rng::random_range`] bounds.
pub trait UniformInt: Copy + PartialOrd {
    /// Converts to the widest working type.
    fn to_u64(self) -> u64;
    /// Converts back from the widest working type.
    fn from_u64(v: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                // Order-preserving map (offset binary for signed types).
                (self as i128).wrapping_sub(<$t>::MIN as i128) as u64
            }
            fn from_u64(v: u64) -> Self {
                ((v as i128).wrapping_add(<$t>::MIN as i128)) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument for [`Rng::random_range`].
pub trait SampleRange<T> {
    /// The half-open `[lo, hi)` bounds; panics on an empty range like
    /// upstream rand.
    fn bounds(self) -> (T, T);
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        assert!(self.start < self.end, "cannot sample empty range");
        (self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        (lo, T::from_u64(hi.to_u64() + 1))
    }
}

/// Convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// A uniform draw from an integer range (debiased via rejection).
    fn random_range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        let (lo, hi) = (lo.to_u64(), hi.to_u64());
        let span = hi - lo;
        if span == 0 {
            return T::from_u64(lo);
        }
        // Rejection sampling over the widest zone that is a multiple of
        // `span`, so the draw is exactly uniform.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return T::from_u64(lo + v % span);
            }
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for rand's
    /// `StdRng` (different stream, same contract: seeded, reproducible,
    /// statistically solid for simulation workloads).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn random_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn f64_draws_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
