//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkId`], [`Throughput`], benchmark groups, `b.iter(..)`,
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros — backed by a simple wall-clock median-of-samples runner that
//! prints one line per benchmark. No statistical analysis, no HTML
//! reports, no baseline comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (stable `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation; recorded and echoed, not analyzed.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that fills a
        // fraction of the measurement budget.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement_time.as_nanos() as u64 / self.sample_size.max(1) as u64;
        let iters = (per_sample / once.as_nanos().max(1) as u64).clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed() / iters as u32);
        }
        samples.sort_unstable();
        self.last = Some(samples[samples.len() / 2]);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Overrides the measurement budget for this group (accepted and
    /// forwarded; kept for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Records the per-iteration throughput of following benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.criterion.bencher(self.sample_size);
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Runs one benchmark without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId2>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        let mut b = self.criterion.bencher(self.sample_size);
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Finishes the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let time = b
            .last
            .map(|d| format!("{d:?}"))
            .unwrap_or_else(|| "<no iter() call>".into());
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  ({n} elems/iter)"),
            Some(Throughput::Bytes(n)) => format!("  ({n} B/iter)"),
            None => String::new(),
        };
        println!("bench {}/{id}: {time}/iter{tp}", self.name);
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s for `bench_function`.
pub struct BenchmarkId2(String);

impl From<&str> for BenchmarkId2 {
    fn from(s: &str) -> Self {
        BenchmarkId2(s.to_owned())
    }
}
impl From<String> for BenchmarkId2 {
    fn from(s: String) -> Self {
        BenchmarkId2(s)
    }
}
impl From<BenchmarkId> for BenchmarkId2 {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkId2(id.id)
    }
}

/// The benchmark runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the default sample count.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget (accepted for API parity; the stub warms
    /// up with a single calibration call).
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Propagates CLI configuration (no-op in the stub).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.bencher(None);
        f(&mut b);
        let time = b
            .last
            .map(|d| format!("{d:?}"))
            .unwrap_or_else(|| "<no iter() call>".into());
        println!("bench {name}: {time}/iter");
        self
    }

    fn bencher(&self, sample_size: Option<usize>) -> Bencher {
        Bencher {
            sample_size: sample_size.unwrap_or(self.sample_size),
            measurement_time: self.measurement_time,
            last: None,
        }
    }
}

/// Declares a benchmark group; both the struct-ish and positional forms
/// of upstream criterion are accepted.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            criterion = criterion.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_measures() {
        quick().bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_composes() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("f", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.bench_with_input(BenchmarkId::from_parameter("p"), &1u32, |b, &n| {
            b.iter(|| black_box(n));
        });
        g.finish();
    }

    criterion_group!(positional, noop_bench);
    criterion_group! {
        name = structured;
        config = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        targets = noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("x", |b| b.iter(|| black_box(0)));
    }

    #[test]
    fn group_macros_declare_runnable_fns() {
        positional();
        structured();
    }
}
